package vm

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
)

// diffEngines builds one CPU per engine via build, runs each to completion
// (or error), and asserts bit-identical final state and identical error
// shape, returning the reference outcome.
func diffEngines(t *testing.T, maxInsts uint64, build func(t *testing.T, e Engine) *CPU) (snapshot, error) {
	t.Helper()
	ref := build(t, allEngines[0])
	refErr := ref.Run(maxInsts)
	for _, e := range allEngines[1:] {
		c := build(t, e)
		cErr := c.Run(maxInsts)
		if a, b := snap(ref), snap(c); a != b {
			t.Fatalf("engines diverged:\n%s: %+v\n%s: %+v", allEngines[0], a, e, b)
		}
		switch {
		case refErr == nil && cErr == nil:
		case refErr == nil || cErr == nil:
			t.Fatalf("engines disagree on error: %s=%v %s=%v", allEngines[0], refErr, e, cErr)
		default:
			if refErr.Error() != cErr.Error() {
				t.Fatalf("engines disagree on error text:\n%s: %v\n%s: %v", allEngines[0], refErr, e, cErr)
			}
			var rf, cf *mem.Fault
			if errors.As(refErr, &rf) != errors.As(cErr, &cf) {
				t.Fatalf("engines disagree on fault presence: %s=%v %s=%v", allEngines[0], refErr, e, cErr)
			}
			if rf != nil && *rf != *cf {
				t.Fatalf("engines disagree on fault detail:\n%s: %+v\n%s: %+v", allEngines[0], *rf, e, *cf)
			}
		}
	}
	return snap(ref), refErr
}

// canaryProg is the canonical fused-superinstruction shape: an SSP-style
// prologue install (ldfs;store) and epilogue check (load;xorfs;je) around a
// frame at rbp. The check passes (nothing clobbers the slot), so JE skips
// the HLT trap and the MOVRI marker runs.
//
// Layout (offsets from TextBase):
//
//	 0: movi  $frame, %rbp        (10 bytes)
//	10: ldfs  %fs:0x28, %rax      ( 6)  ┐ fused install
//	16: store %rax, -8(%rbp)      ( 7)  ┘
//	23: load  -8(%rbp), %rbx      ( 7)  ┐
//	30: xorfs %fs:0x28, %rbx      ( 6)  │ fused check
//	36: je    +1                  ( 5)  ┘
//	41: hlt                       ( 1)  (JE falls here only on mismatch)
//	42: movi  $99, %rcx           (10)
//	52: hlt
func canaryProg() []isa.Inst {
	frame := int64(mem.StackTop - 0x100)
	return []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBP, Imm: frame},
		{Op: isa.LDFS, R1: isa.RAX, Disp: 0x28},
		{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: -8},
		{Op: isa.LOAD, R1: isa.RBX, Base: isa.RBP, Disp: -8},
		{Op: isa.XORFS, R1: isa.RBX, Disp: 0x28},
		{Op: isa.JE, Disp: 1}, // skip the HLT trap
		{Op: isa.HLT},
		{Op: isa.MOVRI, R1: isa.RCX, Imm: 99},
		{Op: isa.HLT},
	}
}

func TestCompiledFusedCanarySequence(t *testing.T) {
	st, err := runBothEngines(t, canaryProg(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.GPR[isa.RCX] != 99 {
		t.Fatalf("rcx = %d, want 99 (canary check should pass and JE skip the trap)", st.GPR[isa.RCX])
	}
	if !st.ZF {
		t.Fatal("ZF clear after matching canary check")
	}
}

// TestCompiledJumpIntoFusedSuperinstruction enters execution in the middle
// of the fused sequences: once at an interior *instruction boundary* (the
// STORE constituent of the fused install) and once truly mid-instruction
// (inside the LDFS payload bytes, a cold offset). Both entries must execute
// with exact interpreter semantics.
func TestCompiledJumpIntoFusedSuperinstruction(t *testing.T) {
	prog := canaryProg()
	installOff := uint64(prog[0].Len())            // the LDFS
	storeOff := installOff + uint64(prog[1].Len()) // its fused STORE
	frame := uint64(mem.StackTop - 0x100)

	t.Run("constituent-boundary", func(t *testing.T) {
		st, err := diffEngines(t, 100, func(t *testing.T, e Engine) *CPU {
			c := buildEngineCPU(t, e, prog)
			// A full warm run first, so the compiled engine has the fused
			// block cached before the interior entry.
			if err := c.Run(100); err != nil {
				t.Fatal(err)
			}
			c.halted = false
			c.GPR = [isa.NumGPR]uint64{}
			c.GPR[isa.RSP] = mem.StackTop
			c.GPR[isa.RBP] = frame
			c.GPR[isa.RAX] = 0x1122334455667788
			c.ZF, c.CF = false, false
			c.RIP = mem.TextBase + storeOff
			return c
		})
		if err != nil {
			t.Fatal(err)
		}
		// Entering at the STORE must store RAX (not a fresh canary load),
		// and the following check must still pass (slot == fs:0x28 == 0 is
		// false here, so rbx = rax ^ canary != 0 -> JE not taken -> HLT trap).
		if st.GPR[isa.RCX] == 99 {
			t.Fatal("interior entry unexpectedly passed the canary check")
		}
	})

	t.Run("mid-instruction", func(t *testing.T) {
		_, err := diffEngines(t, 100, func(t *testing.T, e Engine) *CPU {
			c := buildEngineCPU(t, e, prog)
			if err := c.Run(100); err != nil {
				t.Fatal(err)
			}
			c.halted = false
			c.GPR = [isa.NumGPR]uint64{}
			c.GPR[isa.RSP] = mem.StackTop
			c.GPR[isa.RBP] = frame
			c.ZF, c.CF = false, false
			// Three bytes into the LDFS: a cold offset inside the fused
			// superinstruction's span. Whatever those payload bytes decode
			// to, every engine must agree byte for byte.
			c.RIP = mem.TextBase + installOff + 3
			return c
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestCompiledFusedFaultUnwindsExactly faults each fused constituent and
// asserts the unwound per-step state (counters, RIP, partially retired
// constituent effects, fault detail) matches the other engines exactly.
func TestCompiledFusedFaultUnwindsExactly(t *testing.T) {
	t.Run("install-store-fault", func(t *testing.T) {
		// rbp unmapped: ldfs retires, its fused store faults.
		_, err := runBothEngines(t, []isa.Inst{
			{Op: isa.MOVRI, R1: isa.RBP, Imm: 0x100},
			{Op: isa.LDFS, R1: isa.RAX, Disp: 0x28},
			{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: -8},
			{Op: isa.HLT},
		}, 100)
		if err == nil {
			t.Fatal("want store fault")
		}
	})
	t.Run("install-ldfs-fault", func(t *testing.T) {
		// fs:0x2000 is past the TLS block: the first constituent faults.
		_, err := runBothEngines(t, []isa.Inst{
			{Op: isa.MOVRI, R1: isa.RBP, Imm: int64(mem.StackTop - 0x100)},
			{Op: isa.LDFS, R1: isa.RAX, Disp: 0x2000},
			{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: -8},
			{Op: isa.HLT},
		}, 100)
		if err == nil {
			t.Fatal("want fs load fault")
		}
	})
	t.Run("check-xorfs-fault", func(t *testing.T) {
		// The check's load retires (rbx must hold the loaded word in the
		// final state), then its fused xorfs faults past the TLS block.
		_, err := runBothEngines(t, []isa.Inst{
			{Op: isa.MOVRI, R1: isa.RBP, Imm: int64(mem.StackTop - 0x100)},
			{Op: isa.LDFS, R1: isa.RAX, Disp: 0x28},
			{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: -8},
			{Op: isa.LOAD, R1: isa.RBX, Base: isa.RBP, Disp: -8},
			{Op: isa.XORFS, R1: isa.RBX, Disp: 0x2000},
			{Op: isa.JE, Disp: 1},
			{Op: isa.HLT},
			{Op: isa.HLT},
		}, 100)
		if err == nil {
			t.Fatal("want fs xor fault")
		}
	})
	t.Run("xor-check-xorfs-fault", func(t *testing.T) {
		// P-SSP shape: the leading xor retires (r1 and ZF updated), the
		// fused xorfs faults.
		_, err := runBothEngines(t, []isa.Inst{
			{Op: isa.MOVRI, R1: isa.RAX, Imm: 5},
			{Op: isa.MOVRI, R1: isa.RBX, Imm: 5},
			{Op: isa.XORRR, R1: isa.RAX, R2: isa.RBX},
			{Op: isa.XORFS, R1: isa.RAX, Disp: 0x2000},
			{Op: isa.JE, Disp: 1},
			{Op: isa.HLT},
			{Op: isa.HLT},
		}, 100)
		if err == nil {
			t.Fatal("want fs xor fault")
		}
	})
}

// TestCompiledBudgetExhaustionMidBlock lands the instruction budget in the
// middle of a lowered block: the engine must fall back to exact per-step
// execution for the tail and report the identical budget crash.
func TestCompiledBudgetExhaustionMidBlock(t *testing.T) {
	// A straight-line block of 8 instructions ending in HLT; budgets that
	// land on every interior boundary must agree across engines.
	prog := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 1},
		{Op: isa.ADDRI, R1: isa.RAX, Imm: 2},
		{Op: isa.ADDRI, R1: isa.RAX, Imm: 3},
		{Op: isa.ADDRI, R1: isa.RAX, Imm: 4},
		{Op: isa.ADDRI, R1: isa.RAX, Imm: 5},
		{Op: isa.ADDRI, R1: isa.RAX, Imm: 6},
		{Op: isa.ADDRI, R1: isa.RAX, Imm: 7},
		{Op: isa.HLT},
	}
	for budget := uint64(1); budget < 8; budget++ {
		_, err := runBothEngines(t, prog, budget)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("budget %d: %v, want ErrBudget", budget, err)
		}
	}
	// And across loop iterations: exhaustion mid-iteration of a hot block.
	for budget := uint64(7); budget < 29; budget += 3 {
		_, err := runBothEngines(t, covProg(), budget)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("loop budget %d: %v, want ErrBudget", budget, err)
		}
	}
}

// TestCompiledCOWWriteInvalidatesChildBlockOnly forks a compiled-engine CPU
// COW-style, rewrites the child's code, and asserts the child re-lowers
// while the parent keeps executing its cached compiled blocks.
func TestCompiledCOWWriteInvalidatesChildBlockOnly(t *testing.T) {
	sp := mem.NewSpace()
	if _, err := sp.Map("jit", mem.TextBase, 0x100, mem.PermRead|mem.PermWrite|mem.PermExec); err != nil {
		t.Fatal(err)
	}
	prog := isa.EncodeAll([]isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 1},
		{Op: isa.HLT},
	})
	if err := sp.Segment("jit").CopyIn(0, prog); err != nil {
		t.Fatal(err)
	}
	parent := New(sp, rng.New(1))
	parent.Engine = EngineCompiled
	parent.RIP = mem.TextBase
	if err := parent.Run(10); err != nil {
		t.Fatal(err)
	}
	if parent.GPR[isa.RAX] != 1 {
		t.Fatalf("parent rax = %d, want 1", parent.GPR[isa.RAX])
	}
	parentCode := parent.code.forSegment(sp.Segment("jit"))
	if parentCode.comp == nil || len(parentCode.comp.blocks) == 0 {
		t.Fatal("compiled run lowered no blocks")
	}
	parentComp := parentCode.comp

	childSpace := sp.Clone()
	child := new(CPU)
	*child = *parent
	child.SetMem(childSpace)
	// Guest-visible store into the child's exec segment: materializes the
	// COW copy and bumps the child's generation; the parent's compiled
	// blocks must be untouched.
	if err := childSpace.WriteU64(mem.TextBase+2, 42); err != nil {
		t.Fatal(err)
	}
	child.RIP = mem.TextBase
	child.halted = false
	if err := child.Run(10); err != nil {
		t.Fatal(err)
	}
	if child.GPR[isa.RAX] != 42 {
		t.Fatalf("child rax = %d, want 42 (stale compiled block reused after COW write)", child.GPR[isa.RAX])
	}

	parent.RIP = mem.TextBase
	parent.halted = false
	if err := parent.Run(10); err != nil {
		t.Fatal(err)
	}
	if parent.GPR[isa.RAX] != 1 {
		t.Fatalf("parent rax = %d after child's write, want 1", parent.GPR[isa.RAX])
	}
	if got := parent.code.forSegment(sp.Segment("jit")); got != parentCode || got.comp != parentComp {
		t.Fatal("parent re-lowered its blocks after the child's COW write")
	}
}

// TestCompiledSelfModifyingStoreInBlock stores over an instruction later in
// the same lowered block. The compiled engine must abandon the stale block
// after the store and execute the rewritten bytes, exactly as the per-step
// engines do.
func TestCompiledSelfModifyingStoreInBlock(t *testing.T) {
	build := func(t *testing.T, e Engine) *CPU {
		t.Helper()
		sp := mem.NewSpace()
		if _, err := sp.Map("jit", mem.TextBase, 0x100, mem.PermRead|mem.PermWrite|mem.PermExec); err != nil {
			t.Fatal(err)
		}
		// The STORE overwrites the opcode byte of the trailing MOVRI with
		// HLT (plus seven NOPs from the zero bytes of the immediate), so
		// execution must halt with RCX untouched.
		insts := []isa.Inst{
			{Op: isa.MOVRI, R1: isa.RAX, Imm: int64(isa.HLT)},
			{Op: isa.MOVRI, R1: isa.RBX, Imm: 0}, // patched below
			{Op: isa.STORE, R1: isa.RAX, Base: isa.RBX, Disp: 0},
			{Op: isa.MOVRI, R1: isa.RCX, Imm: 7},
			{Op: isa.HLT},
		}
		targetOff := insts[0].Len() + insts[1].Len() + insts[2].Len()
		insts[1].Imm = int64(mem.TextBase) + int64(targetOff)
		if err := sp.Segment("jit").CopyIn(0, isa.EncodeAll(insts)); err != nil {
			t.Fatal(err)
		}
		c := New(sp, rng.New(1))
		c.Engine = e
		c.RIP = mem.TextBase
		return c
	}
	st, err := diffEngines(t, 100, build)
	if err != nil {
		t.Fatal(err)
	}
	if st.GPR[isa.RCX] != 0 {
		t.Fatalf("rcx = %d, want 0 (stale block executed the overwritten MOVRI)", st.GPR[isa.RCX])
	}
	if st.Insts != 4 {
		t.Fatalf("insts = %d, want 4 (movi, movi, store, hlt)", st.Insts)
	}
}

// TestCompiledCoverageBitIdentical runs the fused canary program and a
// branchy loop under coverage on every engine and asserts the resulting
// maps are bit-identical — fused superinstructions must record one edge per
// constituent, in per-step order.
func TestCompiledCoverageBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog []isa.Inst
	}{
		{"canary", canaryProg()},
		{"loop", covProg()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			record := func(e Engine) *CovMap {
				c := buildEngineCPU(t, e, tc.prog)
				var cov CovMap
				c.SetCoverage(&cov)
				if err := c.Run(1000); err != nil {
					t.Fatal(err)
				}
				return &cov
			}
			ref := record(allEngines[0])
			for _, e := range allEngines[1:] {
				if got := record(e); got.hits != ref.hits {
					t.Fatalf("coverage maps diverged between %s and %s", allEngines[0], e)
				}
			}
		})
	}
}

// TestCompiledDispatchLoopDoesNotAllocate pins the allocation-free
// steady state of the compiled dispatch loop — the same invariant
// coverage_test.go pins for the predecoded engine — with coverage disabled
// and enabled. The program mixes fused canary sequences, stack traffic and
// plain memory ops so all three view classes stay hot.
func TestCompiledDispatchLoopDoesNotAllocate(t *testing.T) {
	prog := func() []isa.Inst {
		head := []isa.Inst{
			{Op: isa.MOVRI, R1: isa.RBP, Imm: int64(mem.StackTop - 0x100)},
			{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase)},
			{Op: isa.MOVRI, R1: isa.RCX, Imm: 12},
		}
		body := []isa.Inst{
			{Op: isa.LDFS, R1: isa.RAX, Disp: 0x28}, // loop: fused install
			{Op: isa.STORE, R1: isa.RAX, Base: isa.RBP, Disp: -8},
			{Op: isa.STORE, R1: isa.RCX, Base: isa.RBX, Disp: 0},
			{Op: isa.LOAD, R1: isa.RDX, Base: isa.RBX, Disp: 0},
			{Op: isa.PUSH, R1: isa.RDX},
			{Op: isa.POP, R1: isa.RDX},
			{Op: isa.LOAD, R1: isa.RSI, Base: isa.RBP, Disp: -8}, // fused check
			{Op: isa.XORFS, R1: isa.RSI, Disp: 0x28},
			{Op: isa.JE, Disp: 1},
			{Op: isa.HLT}, // canary mismatch trap (never taken)
			{Op: isa.SUBRI, R1: isa.RCX, Imm: 1},
			{Op: isa.CMPRI, R1: isa.RCX, Imm: 0},
		}
		back := isa.Inst{Op: isa.JNE}
		total := back.Len()
		for _, in := range body {
			total += in.Len()
		}
		back.Disp = int32(-total)
		return append(append(head, body...), back, isa.Inst{Op: isa.HLT})
	}()
	run := func(t *testing.T, cov *CovMap) {
		t.Helper()
		c := buildEngineCPU(t, EngineCompiled, prog)
		c.SetCoverage(cov)
		allocs := testing.AllocsPerRun(50, func() {
			c.RIP = mem.TextBase
			c.halted = false
			if err := c.Run(250); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("compiled dispatch loop allocates %.1f times per run, want 0", allocs)
		}
	}
	t.Run("disabled", func(t *testing.T) { run(t, nil) })
	t.Run("enabled", func(t *testing.T) { run(t, new(CovMap)) })
}

// TestCompiledForkSharesLoweredBlocks models the kernel's fork: the copied
// CPU shares the code cache — and with it the lowered blocks — with the
// parent, and executes correctly against the cloned space.
func TestCompiledForkSharesLoweredBlocks(t *testing.T) {
	parent := buildEngineCPU(t, EngineCompiled, canaryProg())
	if err := parent.Run(100); err != nil {
		t.Fatal(err)
	}
	sc := parent.curCode
	if sc == nil || sc.comp == nil || len(sc.comp.blocks) == 0 {
		t.Fatal("compiled run left no lowered blocks")
	}
	nblocks := len(sc.comp.blocks)

	childSpace := parent.Mem.Clone()
	child := new(CPU)
	*child = *parent
	child.SetMem(childSpace)
	if child.code != parent.code {
		t.Fatal("fork-style CPU copy did not share the code cache")
	}
	child.RIP = mem.TextBase
	child.halted = false
	child.GPR = [isa.NumGPR]uint64{}
	child.GPR[isa.RSP] = mem.StackTop
	if err := child.Run(100); err != nil {
		t.Fatal(err)
	}
	if child.GPR[isa.RCX] != 99 {
		t.Fatalf("child rcx = %d, want 99", child.GPR[isa.RCX])
	}
	// The child executed from the shared cache: same segCode, no new blocks
	// beyond any cold-entry lowering the parent already did.
	if got := len(sc.comp.blocks); got != nblocks {
		t.Fatalf("child run re-lowered blocks: %d -> %d", nblocks, got)
	}
}

// TestCompiledStepLoopBudgetResume pins resumability: a compiled CPU
// stopped by the budget watchdog continues exactly where it stopped.
func TestCompiledStepLoopBudgetResume(t *testing.T) {
	build := func(t *testing.T, e Engine) *CPU {
		c := buildEngineCPU(t, e, covProg())
		// First run exhausts a small budget mid-loop...
		if err := c.Run(40); !errors.Is(err, ErrBudget) {
			t.Fatalf("want budget kill, got %v", err)
		}
		return c
	}
	// ...then the resumed run must complete identically on every engine.
	st, err := diffEngines(t, 1000, build)
	if err != nil {
		t.Fatal(err)
	}
	if st.GPR[isa.RAX] != 32*33/2 {
		t.Fatalf("rax = %d, want %d", st.GPR[isa.RAX], 32*33/2)
	}
}
