package vm

// Edge coverage for the fuzzing subsystem (internal/fuzz): an AFL-style
// fixed-size hit-count map the step loop folds prev-PC⊕PC edges into.
//
// Recording is off by default and costs the hot loop exactly one nil check
// when disabled — the dispatch path is otherwise unchanged, which the
// coverage tests assert by comparing instrumented and uninstrumented runs
// instruction for instruction. When enabled, each executed instruction
// records the branchless index (covPrev ^ RIP) & (CovMapSize-1) and then
// shifts RIP right by one into covPrev, so A→B and B→A land in different
// cells (the classic AFL trick).

// CovMapSize is the edge map size in bytes. A power of two: the edge index
// is masked, never reduced modulo.
const CovMapSize = 64 * 1024

// CovMap is a fixed 64 KiB edge-coverage map: one saturating 8-bit hit
// counter per edge hash bucket. The zero value is ready to use. A CovMap is
// not safe for concurrent use; every fuzzing shard owns its own map, exactly
// like it owns its own machine.
type CovMap struct {
	hits [CovMapSize]byte
}

// Bytes exposes the raw hit counters (aliased, not copied) for classifiers
// and merge loops. Index i is the bucket of all edges hashing to i.
func (m *CovMap) Bytes() []byte { return m.hits[:] }

// Reset clears every counter — the per-request reset of the fork-server
// fuzzing loop. It is a single memclr, no allocation.
func (m *CovMap) Reset() { clear(m.hits[:]) }

// Edges counts buckets with at least one hit.
func (m *CovMap) Edges() int {
	n := 0
	for _, h := range m.hits {
		if h != 0 {
			n++
		}
	}
	return n
}

// record folds the edge into the map with a saturating counter. Kept out of
// line so Step's disabled path stays a single nil compare.
func (m *CovMap) record(prev, pc uint64) {
	i := (prev ^ pc) & (CovMapSize - 1)
	if m.hits[i] != 0xff {
		m.hits[i]++
	}
}

// SetCoverage installs an edge-coverage map on the CPU (nil disables
// recording, the default). The previous-location state is reset, so the
// first recorded edge is (0 → RIP). Fork copies the CPU struct wholesale,
// which shares the installed map pointer with every child — the property the
// fork-server fuzzing loop builds on: install once on the parked parent,
// and each forked worker records into the same map.
func (c *CPU) SetCoverage(m *CovMap) {
	c.cov = m
	c.covPrev = 0
}

// Coverage returns the installed edge map (nil when recording is disabled).
func (c *CPU) Coverage() *CovMap { return c.cov }
