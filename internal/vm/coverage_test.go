package vm

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// covProg is a small branchy loop: enough distinct edges to exercise the
// map, terminating in HLT.
func covProg() []isa.Inst {
	body := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0},
		{Op: isa.MOVRI, R1: isa.RCX, Imm: 32},
		{Op: isa.ADDRR, R1: isa.RAX, R2: isa.RCX}, // loop:
		{Op: isa.SUBRI, R1: isa.RCX, Imm: 1},
		{Op: isa.CMPRI, R1: isa.RCX, Imm: 0},
	}
	back := isa.Inst{Op: isa.JNE}
	back.Disp = int32(-(body[2].Len() + body[3].Len() + body[4].Len() + back.Len()))
	return append(body, back, isa.Inst{Op: isa.HLT})
}

// TestCoverageDoesNotPerturbExecution is the overhead guard of the coverage
// map: an instrumented run must execute the identical instruction stream —
// same final registers, same instruction and cycle counts — as an
// uninstrumented one, under every engine. Coverage observes execution, it
// never steers it.
func TestCoverageDoesNotPerturbExecution(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			plain := buildEngineCPU(t, e, covProg())
			if err := plain.Run(1000); err != nil {
				t.Fatal(err)
			}
			instr := buildEngineCPU(t, e, covProg())
			var cov CovMap
			instr.SetCoverage(&cov)
			if err := instr.Run(1000); err != nil {
				t.Fatal(err)
			}
			if a, b := snap(plain), snap(instr); a != b {
				t.Fatalf("coverage perturbed execution:\nplain:       %+v\ninstrumented: %+v", a, b)
			}
			if cov.Edges() == 0 {
				t.Fatal("instrumented run recorded no edges")
			}
		})
	}
}

// TestCoverageDisabledStepIsAllocationFree pins the disabled fast path: with
// no map installed, steady-state stepping through cached code must stay
// allocation-free — the same property BenchmarkStepLoop tracks — and the
// enabled path must stay allocation-free too (the map is preallocated).
func TestCoverageDisabledStepIsAllocationFree(t *testing.T) {
	run := func(t *testing.T, cov *CovMap) {
		t.Helper()
		c := buildEngineCPU(t, EnginePredecoded, covProg())
		c.SetCoverage(cov)
		allocs := testing.AllocsPerRun(50, func() {
			c.RIP = mem.TextBase
			c.halted = false
			if err := c.Run(250); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("step loop allocates %.1f times per run, want 0", allocs)
		}
	}
	t.Run("disabled", func(t *testing.T) { run(t, nil) })
	t.Run("enabled", func(t *testing.T) { run(t, new(CovMap)) })
}

// TestCoverageDeterministicAndResettable asserts the map is a pure function
// of the executed path: two identical runs produce bit-identical maps, and
// Reset restores the empty map.
func TestCoverageDeterministicAndResettable(t *testing.T) {
	record := func() *CovMap {
		c := buildEngineCPU(t, EnginePredecoded, covProg())
		var cov CovMap
		c.SetCoverage(&cov)
		if err := c.Run(1000); err != nil {
			t.Fatal(err)
		}
		return &cov
	}
	a, b := record(), record()
	if a.hits != b.hits {
		t.Fatal("identical runs produced different coverage maps")
	}
	if a.Edges() == 0 {
		t.Fatal("no edges recorded")
	}
	a.Reset()
	if a.Edges() != 0 {
		t.Fatalf("Reset left %d edges", a.Edges())
	}
}

// TestCoverageDistinguishesPaths asserts different programs leave different
// footprints — the novelty signal corpus admission depends on.
func TestCoverageDistinguishesPaths(t *testing.T) {
	run := func(prog []isa.Inst) *CovMap {
		c := buildEngineCPU(t, EnginePredecoded, prog)
		var cov CovMap
		c.SetCoverage(&cov)
		if err := c.Run(1000); err != nil {
			t.Fatal(err)
		}
		return &cov
	}
	loop := run(covProg())
	straight := run([]isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 1},
		{Op: isa.HLT},
	})
	if loop.hits == straight.hits {
		t.Fatal("different programs produced identical coverage maps")
	}
}

// TestCoverageSharedAcrossFork models the fork-server loop: the map is
// installed once on the parent, the forked child's CPU copy shares it, and
// the child's execution records into it.
func TestCoverageSharedAcrossFork(t *testing.T) {
	parent := buildEngineCPU(t, EnginePredecoded, covProg())
	var cov CovMap
	parent.SetCoverage(&cov)

	child := new(CPU)
	*child = *parent
	child.SetMem(parent.Mem.Clone())
	if child.Coverage() != &cov {
		t.Fatal("fork-style CPU copy did not share the coverage map")
	}
	if err := child.Run(1000); err != nil {
		t.Fatal(err)
	}
	if cov.Edges() == 0 {
		t.Fatal("child execution recorded nothing into the shared map")
	}
}

// TestCoverageRecordsCrashingPath asserts edges up to (and including) a
// faulting instruction are recorded — crash triage needs the path that led
// to the fault.
func TestCoverageRecordsCrashingPath(t *testing.T) {
	c := buildEngineCPU(t, EnginePredecoded, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: 0x100}, // unmapped
		{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBX, Disp: 0},
		{Op: isa.HLT},
	})
	var cov CovMap
	c.SetCoverage(&cov)
	err := c.Run(100)
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want crash, got %v", err)
	}
	if cov.Edges() < 2 {
		t.Fatalf("crashing run recorded %d edges, want >= 2", cov.Edges())
	}
}

// TestCoverageCounterSaturates pins the 8-bit counters at 255 instead of
// wrapping to 0 — a wrap would make a hot edge look unseen.
func TestCoverageCounterSaturates(t *testing.T) {
	var cov CovMap
	for i := 0; i < 300; i++ {
		cov.record(0, 0x40)
	}
	if got := cov.hits[0x40&(CovMapSize-1)]; got != 0xff {
		t.Fatalf("hot counter = %d, want saturated 255", got)
	}
}
