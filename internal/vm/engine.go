package vm

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// Engine selects how the CPU turns memory bytes into executed instructions.
type Engine uint8

// Engines. The zero value is EnginePredecoded, so CPUs default to the
// decode-once path everywhere; the interpreter stays selectable for
// differential testing (see pssp.WithEngine).
const (
	// EnginePredecoded decodes each executable segment once into a code
	// cache of []isa.Inst plus a PC→instruction table, and dispatches over
	// the predecoded stream. The cache is shared read-only across forked
	// children (fork copies the CPU, and copy-on-write memory keeps the
	// backing code bytes shared) and is invalidated by the segment
	// generation counter when executable bytes change.
	EnginePredecoded Engine = iota
	// EngineInterpreter re-fetches and re-decodes from segment bytes on
	// every step — the original execution model, kept as the reference
	// semantics the predecoded engine is differentially tested against.
	EngineInterpreter
	// EngineCompiled lowers each predecoded segment, lazily and per entry
	// point, into basic blocks of flat pre-resolved micro-ops (see
	// compile.go): operands are direct register indices, memory operands go
	// through cached segment views that skip the per-access segment walk,
	// the canary prologue/epilogue sequences fuse into superinstructions,
	// and budget/cycle/cancellation checks run once per block instead of
	// per step. Blocks hang off the same segCode entries as the predecode
	// cache, so they share the cache's generation-based invalidation and
	// travel to forked children with it; anything the block tier cannot
	// prove safe (traps, cold offsets, self-modified segments, instrumented
	// runs, the sub-block budget tail) falls back to the per-step path,
	// keeping all observable state bit-identical to the other engines.
	EngineCompiled
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EnginePredecoded:
		return "predecoded"
	case EngineInterpreter:
		return "interpreter"
	case EngineCompiled:
		return "compiled"
	default:
		return "engine?"
	}
}

// fetchWindow mirrors the interpreter's Fetch(rip, 16): up to 16 bytes
// starting at off, short at the end of the segment. Decoding through the
// same window keeps the two engines' error values bit-identical (including
// the "truncated" byte counts in decode failures).
func fetchWindow(data []byte, off int) []byte {
	end := off + 16
	if end > len(data) {
		end = len(data)
	}
	return data[off:end]
}

// segCode is the predecoded form of one executable segment at one content
// generation. Staleness is detected by the CodeCache map key (backing-array
// identity) plus gen; the struct holds no segment reference of its own.
type segCode struct {
	gen uint64
	// insts is the decoded instruction stream, in the order a linear scan
	// from the segment start discovers it.
	insts []isa.Inst
	// idx maps a byte offset to its index in insts, or -1 when the offset
	// was not reached by the scan (the interior of an instruction, or bytes
	// that do not decode). Executing at such an offset falls back to direct
	// decoding, preserving exact interpreter semantics for mid-instruction
	// jumps and illegal bytes.
	idx []int32
	// comp is the compiled engine's block-lowered tier over this predecode,
	// built lazily on first compiled execution (see compile.go). Hanging it
	// here means blocks share the predecode cache's invalidation — a
	// generation bump discards the segCode and the blocks with it — and ride
	// to forked children through the shared CodeCache.
	comp *segCompiled
}

// predecode scans the segment once, decoding every instruction reachable by
// linear fall-through. Undecodable bytes are skipped one at a time so that
// code after an embedded data island is still predecoded.
func predecode(seg *mem.Segment) *segCode {
	data := seg.Data
	sc := &segCode{gen: seg.Gen(), idx: make([]int32, len(data))}
	for i := range sc.idx {
		sc.idx[i] = -1
	}
	sc.insts = make([]isa.Inst, 0, len(data)/4)
	for off := 0; off < len(data); {
		in, n, err := isa.Decode(fetchWindow(data, off), 0)
		if err != nil {
			off++ // resync: leave the offset cold, keep scanning
			continue
		}
		sc.idx[off] = int32(len(sc.insts))
		sc.insts = append(sc.insts, in)
		off += n
	}
	return sc
}

// CodeCache holds predecoded segments keyed by the identity of their backing
// arrays. Keying by backing identity (not by *Segment) is what lets a forked
// child reuse its parent's decode work: copy-on-write cloning hands the
// child segment the same backing array, so the lookup hits until someone
// writes to the segment — and a write to executable bytes also bumps the
// generation, which forces a re-decode.
type CodeCache struct {
	segs map[*byte]*segCode
}

// NewCodeCache returns an empty cache.
func NewCodeCache() *CodeCache { return &CodeCache{segs: make(map[*byte]*segCode)} }

// forSegment returns the predecoded form of seg, building or rebuilding it
// if the cache has none for seg's backing array at seg's current generation.
func (cc *CodeCache) forSegment(seg *mem.Segment) *segCode {
	key := &seg.Data[0]
	sc := cc.segs[key]
	if sc == nil || sc.gen != seg.Gen() {
		sc = predecode(seg)
		cc.segs[key] = sc
	}
	return sc
}

// fetchPredecoded resolves the instruction at RIP through the code cache.
// The per-CPU (curSeg, curCode) pair short-circuits the segment lookup while
// execution stays inside one segment, which it almost always does.
func (c *CPU) fetchPredecoded() (isa.Inst, int, error) {
	seg := c.curSeg
	if seg == nil || c.RIP < seg.Base || c.RIP >= seg.End() || seg.Gen() != c.curGen {
		var err error
		seg, err = c.Mem.ExecSegment(c.RIP)
		if err != nil {
			// Report the same 16-byte-window fault the interpreter's
			// Fetch(rip, 16) raises, so unwrapped mem.Fault values stay
			// bit-identical across engines.
			if f, ok := err.(*mem.Fault); ok {
				f.Size = 16
			}
			return isa.Inst{}, 0, c.crash("instruction fetch fault", err)
		}
		if c.code == nil {
			c.code = NewCodeCache()
		}
		c.curSeg = seg
		c.curGen = seg.Gen()
		c.curCode = c.code.forSegment(seg)
	}
	off := c.RIP - seg.Base
	if i := c.curCode.idx[off]; i >= 0 {
		in := c.curCode.insts[i]
		return in, in.Len(), nil
	}
	// Cold offset: decode straight from the (current) segment bytes, exactly
	// as the interpreter would. Not cached — the result may be a jump into
	// the middle of an instruction, and staying cold keeps the shared cache
	// immutable after construction.
	in, n, err := isa.Decode(fetchWindow(seg.Data, int(off)), 0)
	if err != nil {
		return isa.Inst{}, 0, c.crash("illegal instruction", err)
	}
	return in, n, nil
}

// SetMem rebinds the CPU to a new address space and drops the per-CPU
// decode state, which is keyed to the old space's segments. The kernel's
// fork uses this when pointing a copied CPU at the child's cloned space;
// the CodeCache itself is kept — child and parent share it read-only.
func (c *CPU) SetMem(m *mem.Space) {
	c.Mem = m
	c.curSeg = nil
	c.curGen = 0
	c.curCode = nil
	// Direct memory views alias the old space's buffers; a forked child must
	// not write through them. They re-acquire lazily against the new space.
	c.views = [numViews]memView{}
	c.viewEpoch = 0
}
