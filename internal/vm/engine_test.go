package vm

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
)

// buildEngineCPU is buildCPU with an explicit engine.
func buildEngineCPU(t *testing.T, e Engine, prog []isa.Inst) *CPU {
	t.Helper()
	c := buildCPU(t, prog)
	c.Engine = e
	return c
}

// snapshot captures the architectural state the two engines must agree on.
type snapshot struct {
	GPR    [isa.NumGPR]uint64
	X      [isa.NumXMM][2]uint64
	RIP    uint64
	ZF, CF bool
	Cycles uint64
	Insts  uint64
}

func snap(c *CPU) snapshot {
	return snapshot{GPR: c.GPR, X: c.X, RIP: c.RIP, ZF: c.ZF, CF: c.CF, Cycles: c.Cycles, Insts: c.Insts}
}

// allEngines is the full differential matrix; index 0 is the reference the
// others are compared against.
var allEngines = []Engine{EngineInterpreter, EnginePredecoded, EngineCompiled}

// runBothEngines executes the program to completion (or error) under every
// engine and asserts bit-identical final state and identical error shape.
// (The name predates the third engine; "both" now means "all".)
func runBothEngines(t *testing.T, prog []isa.Inst, maxInsts uint64) (snapshot, error) {
	t.Helper()
	ref := buildEngineCPU(t, allEngines[0], prog)
	refErr := ref.Run(maxInsts)
	for _, e := range allEngines[1:] {
		c := buildEngineCPU(t, e, prog)
		cErr := c.Run(maxInsts)

		if a, b := snap(ref), snap(c); a != b {
			t.Fatalf("engines diverged:\n%s: %+v\n%s: %+v", allEngines[0], a, e, b)
		}
		switch {
		case refErr == nil && cErr == nil:
		case refErr == nil || cErr == nil:
			t.Fatalf("engines disagree on error: %s=%v %s=%v", allEngines[0], refErr, e, cErr)
		default:
			if refErr.Error() != cErr.Error() {
				t.Fatalf("engines disagree on error text:\n%s: %v\n%s: %v", allEngines[0], refErr, e, cErr)
			}
			// The unwrapped faults must be bit-identical too, not just the
			// CrashError surface (which omits the cause).
			var rf, cf *mem.Fault
			if errors.As(refErr, &rf) != errors.As(cErr, &cf) {
				t.Fatalf("engines disagree on fault presence: %s=%v %s=%v", allEngines[0], refErr, e, cErr)
			}
			if rf != nil && *rf != *cf {
				t.Fatalf("engines disagree on fault detail:\n%s: %+v\n%s: %+v", allEngines[0], *rf, e, *cf)
			}
		}
	}
	return snap(ref), refErr
}

func TestEnginesAgreeOnStraightLineCode(t *testing.T) {
	_, err := runBothEngines(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 10},
		{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase)},
		{Op: isa.STORE, R1: isa.RAX, Base: isa.RBX, Disp: 8},
		{Op: isa.LOAD, R1: isa.RCX, Base: isa.RBX, Disp: 8},
		{Op: isa.ADDRR, R1: isa.RAX, R2: isa.RCX},
		{Op: isa.PUSH, R1: isa.RAX},
		{Op: isa.POP, R1: isa.RDX},
		{Op: isa.HLT},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnginesAgreeOnBranchyLoop(t *testing.T) {
	// Sum 1..100 with a backward JNE.
	body := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0},
		{Op: isa.MOVRI, R1: isa.RCX, Imm: 100},
		{Op: isa.ADDRR, R1: isa.RAX, R2: isa.RCX}, // loop:
		{Op: isa.SUBRI, R1: isa.RCX, Imm: 1},
		{Op: isa.CMPRI, R1: isa.RCX, Imm: 0},
	}
	back := isa.Inst{Op: isa.JNE}
	back.Disp = int32(-(body[2].Len() + body[3].Len() + body[4].Len() + back.Len()))
	prog := append(body, back, isa.Inst{Op: isa.HLT})
	st, err := runBothEngines(t, prog, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.GPR[isa.RAX] != 5050 {
		t.Fatalf("sum = %d, want 5050", st.GPR[isa.RAX])
	}
}

func TestEnginesAgreeOnCrash(t *testing.T) {
	_, err := runBothEngines(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: 0x100}, // unmapped
		{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBX, Disp: 0},
		{Op: isa.HLT},
	}, 100)
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want CrashError from both engines, got %v", err)
	}
}

func TestEnginesAgreeOnFetchFault(t *testing.T) {
	// Jump into unmapped memory: both engines must raise the same
	// instruction-fetch fault, including the fault's window size.
	_, err := runBothEngines(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0x100},
		{Op: isa.CALLR, R1: isa.RAX},
	}, 100)
	var fault *mem.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("want mem.Fault, got %v", err)
	}
	if !fault.Exec {
		t.Fatalf("fault not marked exec: %+v", fault)
	}
}

func TestEnginesAgreeOnIllegalInstruction(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.String(), func(t *testing.T) {
			sp := mem.NewSpace()
			if _, err := sp.Map("text", mem.TextBase, 16, mem.PermRead|mem.PermExec); err != nil {
				t.Fatal(err)
			}
			sp.Segment("text").Data[0] = 0xee
			c := New(sp, rng.New(1))
			c.Engine = e
			c.RIP = mem.TextBase
			var crash *CrashError
			if err := c.Step(); !errors.As(err, &crash) {
				t.Fatalf("expected crash on illegal opcode, got %v", err)
			}
		})
	}
}

func TestEnginesAgreeOnBudgetExhaustion(t *testing.T) {
	self := isa.Inst{Op: isa.JMP}
	self.Disp = int32(-self.Len())
	_, err := runBothEngines(t, []isa.Inst{self}, 50)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("budget kill does not wrap ErrBudget: %v", err)
	}
}

func TestPredecodedMidInstructionJump(t *testing.T) {
	// Jump into the immediate bytes of a MOVRI. The interpreter decodes
	// whatever is there; the predecoded engine must fall back and agree.
	// The immediate encodes a valid NOP+HLT stream when executed.
	imm := int64(isa.NOP) | int64(isa.NOP)<<8 | int64(isa.HLT)<<16 | int64(isa.NOP)<<24 |
		int64(isa.NOP)<<32 | int64(isa.NOP)<<40 | int64(isa.NOP)<<48 | int64(isa.NOP)<<56
	mov := isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: imm}
	// JMP back into mov's immediate field: opcode byte + reg byte = 2 bytes in.
	back := isa.Inst{Op: isa.JMP}
	back.Disp = int32(-(mov.Len() + back.Len()) + 2)
	prog := []isa.Inst{mov, back}
	st, err := runBothEngines(t, prog, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Insts == 0 {
		t.Fatal("no instructions executed")
	}
}

func TestPredecodedResyncPastDataIsland(t *testing.T) {
	// An undecodable data island embedded between two valid instruction
	// runs: the linear predecode scan must resync one byte at a time and
	// still cache the code after the island, and a jump over the island must
	// execute identically under both engines.
	sp := mem.NewSpace()
	if _, err := sp.Map("text", mem.TextBase, 0x100, mem.PermRead|mem.PermExec); err != nil {
		t.Fatal(err)
	}
	head := isa.EncodeAll([]isa.Inst{{Op: isa.MOVRI, R1: isa.RAX, Imm: 5}})
	tail := isa.EncodeAll([]isa.Inst{
		{Op: isa.ADDRI, R1: isa.RAX, Imm: 2},
		{Op: isa.HLT},
	})
	island := []byte{0xee, 0xee, 0xee} // no such opcode
	jmp := isa.Inst{Op: isa.JMP}
	jmp.Disp = int32(len(island))
	code := append(append(append(head, isa.EncodeAll([]isa.Inst{jmp})...), island...), tail...)
	if err := sp.Segment("text").CopyIn(0, code); err != nil {
		t.Fatal(err)
	}

	run := func(e Engine) *CPU {
		t.Helper()
		c := New(sp, rng.New(1))
		c.Engine = e
		c.RIP = mem.TextBase
		if err := c.Run(100); err != nil {
			t.Fatal(err)
		}
		return c
	}
	pre, itp, cmp := run(EnginePredecoded), run(EngineInterpreter), run(EngineCompiled)
	if a, b := snap(pre), snap(itp); a != b {
		t.Fatalf("engines diverged over data island:\npredecoded:  %+v\ninterpreter: %+v", a, b)
	}
	if a, b := snap(pre), snap(cmp); a != b {
		t.Fatalf("engines diverged over data island:\npredecoded: %+v\ncompiled:   %+v", a, b)
	}
	if pre.GPR[isa.RAX] != 7 {
		t.Fatalf("rax = %d, want 7", pre.GPR[isa.RAX])
	}
	// The resync must have predecoded the post-island instructions: their
	// offsets are warm in the index, the island bytes stay cold.
	sc := pre.code.forSegment(sp.Segment("text"))
	tailOff := len(head) + jmp.Len() + len(island)
	if sc.idx[tailOff] < 0 {
		t.Fatalf("post-island offset %d not predecoded (resync failed)", tailOff)
	}
	for i := 0; i < len(island); i++ {
		if sc.idx[len(head)+jmp.Len()+i] >= 0 {
			t.Fatalf("island byte %d was predecoded", i)
		}
	}
}

func TestColdOffsetFallbackMatchesDirectDecode(t *testing.T) {
	// Jumping into the interior of a predecoded instruction must decode the
	// same bytes the interpreter would — directly from segment memory — and
	// leave the shared cache untouched (cold offsets are never cached).
	imm := int64(isa.NOP) | int64(isa.HLT)<<8
	prog := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: imm},
		{Op: isa.HLT},
	}
	pre := buildEngineCPU(t, EnginePredecoded, prog)
	if err := pre.Run(10); err != nil {
		t.Fatal(err)
	}
	sc := pre.curCode
	before := len(sc.insts)

	// Resume inside MOVRI's immediate field (2 header bytes in): the bytes
	// there decode as NOP, HLT.
	restart := func(c *CPU) {
		c.RIP = mem.TextBase + 2
		c.halted = false
	}
	restart(pre)
	if err := pre.Run(10); err != nil {
		t.Fatal(err)
	}
	itp := buildEngineCPU(t, EngineInterpreter, prog)
	if err := itp.Run(10); err != nil {
		t.Fatal(err)
	}
	restart(itp)
	if err := itp.Run(10); err != nil {
		t.Fatal(err)
	}
	if a, b := snap(pre), snap(itp); a != b {
		t.Fatalf("cold-offset fallback diverged:\npredecoded:  %+v\ninterpreter: %+v", a, b)
	}
	if got := len(sc.insts); got != before {
		t.Fatalf("cold-offset execution grew the shared cache: %d -> %d insts", before, got)
	}
}

func TestCOWWriteToExecSegmentInvalidatesChildOnly(t *testing.T) {
	// Fork semantics for the code cache: after a COW clone, a write to the
	// child's exec segment must bump the child's generation and re-decode
	// its code, while the parent — whose bytes did not change — keeps
	// executing its original (cached) program.
	sp := mem.NewSpace()
	if _, err := sp.Map("jit", mem.TextBase, 0x100, mem.PermRead|mem.PermWrite|mem.PermExec); err != nil {
		t.Fatal(err)
	}
	prog := isa.EncodeAll([]isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 1},
		{Op: isa.HLT},
	})
	if err := sp.Segment("jit").CopyIn(0, prog); err != nil {
		t.Fatal(err)
	}
	parent := New(sp, rng.New(1))
	parent.RIP = mem.TextBase
	if err := parent.Run(10); err != nil {
		t.Fatal(err)
	}
	if parent.GPR[isa.RAX] != 1 {
		t.Fatalf("parent rax = %d, want 1", parent.GPR[isa.RAX])
	}

	childSpace := sp.Clone()
	child := new(CPU)
	*child = *parent
	child.SetMem(childSpace)
	// Guest-visible store into the child's exec segment: materializes the
	// COW copy and bumps the child segment's generation.
	parentGen := sp.Segment("jit").Gen()
	if err := childSpace.WriteU64(mem.TextBase+2, 42); err != nil {
		t.Fatal(err)
	}
	if childSpace.Segment("jit").Gen() == parentGen {
		t.Fatal("COW write did not bump the child's exec generation")
	}
	if sp.Segment("jit").Gen() != parentGen {
		t.Fatal("COW write leaked a generation bump into the parent")
	}

	child.RIP = mem.TextBase
	child.halted = false
	if err := child.Run(10); err != nil {
		t.Fatal(err)
	}
	if child.GPR[isa.RAX] != 42 {
		t.Fatalf("child rax = %d, want 42 (stale decode reused after COW write)", child.GPR[isa.RAX])
	}

	parent.RIP = mem.TextBase
	parent.halted = false
	if err := parent.Run(10); err != nil {
		t.Fatal(err)
	}
	if parent.GPR[isa.RAX] != 1 {
		t.Fatalf("parent rax = %d after child's write, want 1", parent.GPR[isa.RAX])
	}
}

func TestPredecodedSelfModifyingCodeInvalidates(t *testing.T) {
	// A writable+executable segment: the program is executed, then the host
	// rewrites an instruction through the Space write path (bumping the
	// generation) and re-executes. The stale decode must not be reused.
	sp := mem.NewSpace()
	if _, err := sp.Map("jit", mem.TextBase, 0x100, mem.PermRead|mem.PermWrite|mem.PermExec); err != nil {
		t.Fatal(err)
	}
	prog := isa.EncodeAll([]isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 1},
		{Op: isa.HLT},
	})
	if err := sp.Segment("jit").CopyIn(0, prog); err != nil {
		t.Fatal(err)
	}
	c := New(sp, rng.New(1))
	c.RIP = mem.TextBase
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.GPR[isa.RAX] != 1 {
		t.Fatalf("first run: rax = %d, want 1", c.GPR[isa.RAX])
	}

	// Rewrite the immediate via guest-visible stores: MOVRI imm starts 2
	// bytes into the instruction.
	if err := sp.WriteU64(mem.TextBase+2, 99); err != nil {
		t.Fatal(err)
	}
	c2 := New(sp, rng.New(1))
	c2.code = c.code // share the cache, as a forked child would
	c2.RIP = mem.TextBase
	if err := c2.Run(10); err != nil {
		t.Fatal(err)
	}
	if c2.GPR[isa.RAX] != 99 {
		t.Fatalf("after self-modify: rax = %d, want 99 (stale decode reused?)", c2.GPR[isa.RAX])
	}
}

func TestForkedCPUSharesCodeCache(t *testing.T) {
	prog := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 7},
		{Op: isa.HLT},
	}
	parent := buildEngineCPU(t, EnginePredecoded, prog)
	if err := parent.Run(10); err != nil {
		t.Fatal(err)
	}
	if parent.code == nil {
		t.Fatal("predecoded run did not build a code cache")
	}

	// Model the kernel's fork: copy the CPU, rebind to the cloned space.
	childSpace := parent.Mem.Clone()
	child := new(CPU)
	*child = *parent
	child.SetMem(childSpace)
	if child.code != parent.code {
		t.Fatal("fork-style CPU copy did not share the code cache")
	}
	child.RIP = mem.TextBase
	child.halted = false
	if err := child.Run(10); err != nil {
		t.Fatal(err)
	}
	if child.GPR[isa.RAX] != 7 {
		t.Fatalf("child rax = %d, want 7", child.GPR[isa.RAX])
	}
	// The child's run must not have re-decoded: same backing, same gen.
	if len(parent.code.segs) != 1 {
		t.Fatalf("cache holds %d segments, want 1 (shared decode)", len(parent.code.segs))
	}
}

func TestPredecodedStepLoopDoesNotAllocate(t *testing.T) {
	// Steady-state stepping through cached code must be allocation-free —
	// the property the BenchmarkStepLoop numbers in BENCH_engine.json track.
	body := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase)},
		{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBX, Disp: 0}, // loop:
		{Op: isa.STORE, R1: isa.RAX, Base: isa.RBX, Disp: 8},
		{Op: isa.ADDRI, R1: isa.RAX, Imm: 1},
	}
	back := isa.Inst{Op: isa.JMP}
	back.Disp = int32(-(body[1].Len() + body[2].Len() + body[3].Len() + back.Len()))
	c := buildEngineCPU(t, EnginePredecoded, append(body, back))
	if err := c.Run(64); err != nil { // warm the cache
		if !errors.Is(err, ErrBudget) {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 100; i++ {
			if err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("predecoded step loop allocates %.1f times per 100 steps, want 0", allocs)
	}
}
