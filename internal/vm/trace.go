package vm

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Tracer observes instruction execution. Install one on a CPU to debug guest
// code or to collect per-opcode statistics for the cost-model experiments.
type Tracer interface {
	// Trace is called before each instruction executes.
	Trace(cpu *CPU, in isa.Inst)
}

// SetTracer installs (or clears, with nil) the CPU's tracer.
func (c *CPU) SetTracer(t Tracer) { c.tracer = t }

// WriterTracer writes one line per instruction: cycle count, RIP, and the
// disassembled instruction.
type WriterTracer struct {
	W io.Writer
	// Limit stops printing after this many instructions (0 = unlimited).
	Limit uint64
	n     uint64
}

// Trace implements Tracer.
func (t *WriterTracer) Trace(cpu *CPU, in isa.Inst) {
	if t.Limit > 0 && t.n >= t.Limit {
		return
	}
	t.n++
	fmt.Fprintf(t.W, "%10d  %08x  %s\n", cpu.Cycles, cpu.RIP, in)
}

// OpStats counts executed instructions and cycles per opcode — the
// measurement behind per-scheme cost attribution.
type OpStats struct {
	Count  [isa.NumOps]uint64
	Cycles [isa.NumOps]uint64
}

// Trace implements Tracer.
func (s *OpStats) Trace(_ *CPU, in isa.Inst) {
	s.Count[in.Op]++
	s.Cycles[in.Op] += in.Op.Cycles()
}

// Total returns overall instruction and cycle counts.
func (s *OpStats) Total() (insts, cycles uint64) {
	for op := isa.Op(0); op < isa.NumOps; op++ {
		insts += s.Count[op]
		cycles += s.Cycles[op]
	}
	return insts, cycles
}

// Report renders non-zero opcode rows, most cycles first.
func (s *OpStats) Report(w io.Writer) {
	type row struct {
		op isa.Op
	}
	var rows []row
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if s.Count[op] > 0 {
			rows = append(rows, row{op})
		}
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if s.Cycles[rows[j].op] > s.Cycles[rows[i].op] {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	fmt.Fprintf(w, "%-12s %12s %12s\n", "opcode", "count", "cycles")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12d %12d\n", r.op.Name(), s.Count[r.op], s.Cycles[r.op])
	}
}
