// Package vm implements the CPU of the simulated machine: a decode-once
// dispatch loop (or, selectably, a classic fetch–decode–execute interpreter)
// over the ISA in internal/isa, with per-instruction cycle accounting, a
// hardware random source behind RDRAND, a time-stamp counter behind RDTSC,
// and an AES-128 block-encrypt primitive standing in for AES-NI.
//
// The CPU knows nothing about processes; the kernel (internal/kernel) owns
// process state and receives SYSCALL traps through the Syscaller interface.
package vm

import (
	"context"
	"crypto/aes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
)

// Syscaller receives SYSCALL traps. The system-call number arrives in RAX
// and up to three arguments in RDI, RSI, RDX; the return value is placed in
// RAX. Returning an error aborts execution with that error.
type Syscaller interface {
	Syscall(cpu *CPU, nr, a1, a2, a3 uint64) (uint64, error)
}

// ErrHalted is returned by Step and Run when the CPU executed HLT or a
// syscall handler requested an orderly stop.
var ErrHalted = errors.New("vm: halted")

// ErrBudget marks crashes raised by the instruction-budget watchdog: the
// CPU was stopped for exceeding its step budget, not for guest misbehaviour.
// kernel.ErrBudget aliases it, so budget kills classify identically whether
// they surface from the raw VM loop or through the kernel.
var ErrBudget = errors.New("vm: instruction budget exhausted")

// CrashError reports an abnormal termination: a memory fault, an invalid
// instruction, or an explicit abort (the __stack_chk_fail path). The
// byte-by-byte attacker's oracle is exactly "did the child crash".
type CrashError struct {
	RIP    uint64
	Reason string
	Cause  error
}

// Error implements error.
func (e *CrashError) Error() string {
	return fmt.Sprintf("vm: crash at rip=0x%x: %s", e.RIP, e.Reason)
}

// Unwrap returns the underlying cause, if any.
func (e *CrashError) Unwrap() error { return e.Cause }

// CPU is one simulated hardware thread.
type CPU struct {
	GPR [isa.NumGPR]uint64
	X   [isa.NumXMM][2]uint64 // [0]=low 64, [1]=high 64
	RIP uint64
	ZF  bool
	CF  bool

	// FSBase is the FS segment base; fs:disp addressing resolves to
	// FSBase+disp. The kernel points it at the process's TLS block.
	FSBase uint64

	// Cycles is the simulated cycle counter, advanced by each instruction's
	// cost from the calibrated model.
	Cycles uint64

	// TSCBase offsets the value RDTSC reports. Hardware time-stamp counters
	// are per-core wall-clock counters that fork does not reset; the kernel
	// sets this to global machine time at process creation so two children
	// replaying the same instruction path still read different TSC values —
	// the property P-SSP-OWF's nonce depends on.
	TSCBase uint64

	// Insts counts executed instructions.
	Insts uint64

	// Engine selects the execution engine. The zero value is
	// EnginePredecoded; set EngineInterpreter for the legacy
	// fetch-decode-each-step path or EngineCompiled for the block-lowered
	// tier. Fork clones it with the CPU.
	Engine Engine

	Mem  *mem.Space
	Rand *rng.Source
	Sys  Syscaller

	// CostModel, when non-nil, overrides the calibrated per-opcode cycle
	// table. Fork clones it with the rest of the CPU state, so a model set on
	// a server parent applies to every worker it forks.
	CostModel func(op isa.Op) uint64

	tracer Tracer
	halted bool

	// code is the decode-once cache; forked children share it because fork
	// copies the CPU struct wholesale. Lazily allocated on first predecoded
	// fetch, so the interpreter engine pays nothing for it.
	code *CodeCache
	// curSeg/curGen/curCode short-circuit the per-step segment lookup while
	// RIP stays in one segment. Keyed to Mem — SetMem resets them.
	curSeg  *mem.Segment
	curGen  uint64
	curCode *segCode

	// cov, when non-nil, receives every executed edge (covPrev is the
	// shifted previous PC). Off by default; the disabled cost is the one nil
	// check in Step. Fork shares the map with the child via the CPU copy.
	cov     *CovMap
	covPrev uint64

	// views are the compiled engine's cached direct memory windows, one per
	// operand class (stack / FS / data), keyed to Mem's sharing epoch.
	// SetMem and an epoch move drop them; see compile.go.
	views     [numViews]memView
	viewEpoch uint64
}

// New returns a CPU bound to the given memory and entropy source, running
// the default (predecoded) engine.
func New(m *mem.Space, r *rng.Source) *CPU {
	return &CPU{Mem: m, Rand: r}
}

// Halt requests an orderly stop; the current Step returns ErrHalted.
// Syscall handlers use this to implement exit(2).
func (c *CPU) Halt() { c.halted = true }

// Halted reports whether the CPU has been halted.
func (c *CPU) Halted() bool { return c.halted }

// crash wraps err into a CrashError at the current RIP.
func (c *CPU) crash(reason string, cause error) error {
	return &CrashError{RIP: c.RIP, Reason: reason, Cause: cause}
}

// push stores v at RSP-8 and decrements RSP.
func (c *CPU) push(v uint64) error {
	c.GPR[isa.RSP] -= 8
	return c.Mem.WriteU64(c.GPR[isa.RSP], v)
}

// pop loads the word at RSP and increments RSP.
func (c *CPU) pop() (uint64, error) {
	v, err := c.Mem.ReadU64(c.GPR[isa.RSP])
	if err != nil {
		return 0, err
	}
	c.GPR[isa.RSP] += 8
	return v, nil
}

// Step executes one instruction. It returns ErrHalted on orderly stop and a
// *CrashError on abnormal termination.
func (c *CPU) Step() error {
	if c.halted {
		return ErrHalted
	}
	if c.cov != nil {
		c.cov.record(c.covPrev, c.RIP)
		c.covPrev = c.RIP >> 1
	}
	var in isa.Inst
	var n int
	// The compiled engine's single-step fallback rides the predecoded fetch:
	// identical cache, identical fault shaping.
	if c.Engine != EngineInterpreter {
		var err error
		in, n, err = c.fetchPredecoded()
		if err != nil {
			return err
		}
	} else {
		code, err := c.Mem.Fetch(c.RIP, 16)
		if err != nil {
			return c.crash("instruction fetch fault", err)
		}
		in, n, err = isa.Decode(code, 0)
		if err != nil {
			return c.crash("illegal instruction", err)
		}
	}
	next := c.RIP + uint64(n)
	if c.tracer != nil {
		c.tracer.Trace(c, in)
	}
	if c.CostModel != nil {
		c.Cycles += c.CostModel(in.Op)
	} else {
		c.Cycles += in.Op.Cycles()
	}
	c.Insts++
	return c.exec(in, next)
}

// exec dispatches one decoded instruction. next is the fall-through RIP;
// branches adjust it. Both engines funnel here, so execution semantics —
// including crash causes and flag effects — are engine-independent by
// construction.
func (c *CPU) exec(in isa.Inst, next uint64) error {
	switch in.Op {
	case isa.NOP:
	case isa.HLT:
		c.halted = true
		c.RIP = next
		return ErrHalted

	case isa.PUSH:
		if err := c.push(c.GPR[in.R1]); err != nil {
			return c.crash("push fault", err)
		}
	case isa.POP:
		v, err := c.pop()
		if err != nil {
			return c.crash("pop fault", err)
		}
		c.GPR[in.R1] = v

	case isa.MOVRR:
		c.GPR[in.R1] = c.GPR[in.R2]
	case isa.MOVRI:
		c.GPR[in.R1] = uint64(in.Imm)
	case isa.LOAD:
		v, err := c.Mem.ReadU64(c.GPR[in.Base] + uint64(int64(in.Disp)))
		if err != nil {
			return c.crash("load fault", err)
		}
		c.GPR[in.R1] = v
	case isa.STORE:
		if err := c.Mem.WriteU64(c.GPR[in.Base]+uint64(int64(in.Disp)), c.GPR[in.R1]); err != nil {
			return c.crash("store fault", err)
		}
	case isa.LDFS:
		v, err := c.Mem.ReadU64(c.FSBase + uint64(int64(in.Disp)))
		if err != nil {
			return c.crash("fs load fault", err)
		}
		c.GPR[in.R1] = v
	case isa.STFS:
		if err := c.Mem.WriteU64(c.FSBase+uint64(int64(in.Disp)), c.GPR[in.R1]); err != nil {
			return c.crash("fs store fault", err)
		}
	case isa.LEA:
		c.GPR[in.R1] = c.GPR[in.Base] + uint64(int64(in.Disp))

	case isa.ADDRR:
		c.GPR[in.R1] += c.GPR[in.R2]
	case isa.ADDRI:
		c.GPR[in.R1] += uint64(in.Imm)
	case isa.SUBRR:
		c.GPR[in.R1] -= c.GPR[in.R2]
	case isa.SUBRI:
		c.GPR[in.R1] -= uint64(in.Imm)
	case isa.XORRR:
		c.GPR[in.R1] ^= c.GPR[in.R2]
		c.ZF = c.GPR[in.R1] == 0
	case isa.XORFS:
		v, err := c.Mem.ReadU64(c.FSBase + uint64(int64(in.Disp)))
		if err != nil {
			return c.crash("fs xor fault", err)
		}
		c.GPR[in.R1] ^= v
		c.ZF = c.GPR[in.R1] == 0
	case isa.ORRR:
		c.GPR[in.R1] |= c.GPR[in.R2]
	case isa.ANDRR:
		c.GPR[in.R1] &= c.GPR[in.R2]
	case isa.SHLRI:
		c.GPR[in.R1] <<= uint(in.Imm) & 63
	case isa.SHRRI:
		c.GPR[in.R1] >>= uint(in.Imm) & 63

	case isa.CMPRR:
		c.ZF = c.GPR[in.R1] == c.GPR[in.R2]
	case isa.CMPRI:
		c.ZF = c.GPR[in.R1] == uint64(in.Imm)

	case isa.JMP:
		next += uint64(int64(in.Disp))
	case isa.JE:
		if c.ZF {
			next += uint64(int64(in.Disp))
		}
	case isa.JNE:
		if !c.ZF {
			next += uint64(int64(in.Disp))
		}

	case isa.CALL:
		if err := c.push(next); err != nil {
			return c.crash("call push fault", err)
		}
		next += uint64(int64(in.Disp))
	case isa.CALLR:
		if err := c.push(next); err != nil {
			return c.crash("call push fault", err)
		}
		next = c.GPR[in.R1]
	case isa.RET:
		v, err := c.pop()
		if err != nil {
			return c.crash("ret pop fault", err)
		}
		next = v
	case isa.LEAVE:
		c.GPR[isa.RSP] = c.GPR[isa.RBP]
		v, err := c.pop()
		if err != nil {
			return c.crash("leave pop fault", err)
		}
		c.GPR[isa.RBP] = v

	case isa.RDRAND:
		c.GPR[in.R1] = c.Rand.Uint64()
		c.CF = true
	case isa.RDFSBASE:
		c.GPR[in.R1] = c.FSBase
	case isa.RDTSC:
		// edx:eax <- TSC, exactly as on x86: the paper's OWF prologue
		// reassembles the 64-bit value with shl/or (Code 8).
		tsc := c.TSCBase + c.Cycles
		c.GPR[isa.RAX] = tsc & 0xffffffff
		c.GPR[isa.RDX] = tsc >> 32

	case isa.MOVQX:
		c.X[in.X1][0] = c.GPR[in.R1]
		c.X[in.X1][1] = 0
	case isa.MOVHX:
		v, err := c.Mem.ReadU64(c.GPR[in.Base] + uint64(int64(in.Disp)))
		if err != nil {
			return c.crash("movhps fault", err)
		}
		c.X[in.X1][1] = v
	case isa.PUNPCKX:
		c.X[in.X1][1] = c.GPR[in.R1]
	case isa.MOVXQ:
		c.GPR[in.R1] = c.X[in.X1][0]
	case isa.STX:
		addr := c.GPR[in.Base] + uint64(int64(in.Disp))
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:8], c.X[in.X1][0])
		binary.LittleEndian.PutUint64(b[8:], c.X[in.X1][1])
		if err := c.Mem.Write(addr, b[:]); err != nil {
			return c.crash("movdqu store fault", err)
		}
	case isa.LDX:
		addr := c.GPR[in.Base] + uint64(int64(in.Disp))
		var b [16]byte
		if err := c.Mem.ReadInto(addr, b[:]); err != nil {
			return c.crash("movdqu load fault", err)
		}
		c.X[in.X1][0] = binary.LittleEndian.Uint64(b[:8])
		c.X[in.X1][1] = binary.LittleEndian.Uint64(b[8:])
	case isa.AESENC:
		if err := c.aesEncrypt(); err != nil {
			return c.crash("aes fault", err)
		}
	case isa.CMPX:
		addr := c.GPR[in.Base] + uint64(int64(in.Disp))
		var b [16]byte
		if err := c.Mem.ReadInto(addr, b[:]); err != nil {
			return c.crash("cmpx fault", err)
		}
		lo := binary.LittleEndian.Uint64(b[:8])
		hi := binary.LittleEndian.Uint64(b[8:])
		c.ZF = lo == c.X[in.X1][0] && hi == c.X[in.X1][1]

	case isa.SYSCALL:
		if c.Sys == nil {
			return c.crash("syscall with no handler", nil)
		}
		// RIP must point past the syscall so fork can resume the child.
		c.RIP = next
		ret, err := c.Sys.Syscall(c, c.GPR[isa.RAX], c.GPR[isa.RDI], c.GPR[isa.RSI], c.GPR[isa.RDX])
		if err != nil {
			return err
		}
		c.GPR[isa.RAX] = ret
		if c.halted {
			return ErrHalted
		}
		return nil

	default:
		return c.crash(fmt.Sprintf("unimplemented opcode %s", in.Op.Name()), nil)
	}

	c.RIP = next
	return nil
}

// aesEncrypt implements the AESENC primitive: xmm15 <- AES-128(key=xmm1,
// xmm15). It stands in for the AES_ENCRYPT_128 helper the paper builds from
// AES-NI rounds; the single-instruction form keeps the toy ISA small while
// exercising the identical dataflow (key from r12/r13 via xmm1, plaintext =
// rdtsc||return-address in xmm15).
func (c *CPU) aesEncrypt() error {
	var key, block [16]byte
	binary.LittleEndian.PutUint64(key[:8], c.X[isa.XMM1][0])
	binary.LittleEndian.PutUint64(key[8:], c.X[isa.XMM1][1])
	binary.LittleEndian.PutUint64(block[:8], c.X[isa.XMM15][0])
	binary.LittleEndian.PutUint64(block[8:], c.X[isa.XMM15][1])
	cipher, err := aes.NewCipher(key[:])
	if err != nil {
		return err
	}
	cipher.Encrypt(block[:], block[:])
	c.X[isa.XMM15][0] = binary.LittleEndian.Uint64(block[:8])
	c.X[isa.XMM15][1] = binary.LittleEndian.Uint64(block[8:])
	return nil
}

// Run executes until halt, crash, or the instruction budget is exhausted.
// It returns nil on orderly halt.
func (c *CPU) Run(maxInsts uint64) error {
	return c.RunContext(context.Background(), maxInsts)
}

// cancelCheckMask controls how often the step loops poll the context: every
// (mask+1) instructions. Polling a channel is ~ns-scale, so at this stride
// cancellation latency stays in the microseconds while the fast path pays
// one masked compare per instruction.
const cancelCheckMask = 1023

// RunContext executes until halt, crash, budget exhaustion, or ctx
// cancellation. On cancellation the CPU is left exactly where it stopped —
// resumable with another RunContext call — and ctx.Err() is returned.
// Budget exhaustion returns a *CrashError wrapping ErrBudget.
func (c *CPU) RunContext(ctx context.Context, maxInsts uint64) error {
	// Instrumented runs (tracer or cost-model override) need the per-step
	// loop: every observable hook fires per instruction there. The block
	// dispatcher reproduces identical final state but not per-step hooks.
	if c.Engine == EngineCompiled && c.tracer == nil && c.CostModel == nil {
		return c.runCompiled(ctx, maxInsts)
	}
	done := ctx.Done()
	for i := uint64(0); i < maxInsts; i++ {
		if done != nil && i&cancelCheckMask == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		switch err := c.Step(); {
		case err == nil:
		case errors.Is(err, ErrHalted):
			return nil
		default:
			return err
		}
	}
	return c.crash(fmt.Sprintf("instruction budget %d exhausted", maxInsts), ErrBudget)
}
