package vm

import (
	"bytes"
	"context"
	"crypto/aes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
)

// buildCPU maps a standard layout, installs the given program at TextBase,
// and returns a ready-to-run CPU.
func buildCPU(t *testing.T, prog []isa.Inst) *CPU {
	t.Helper()
	sp := mem.NewSpace()
	if _, err := sp.Map("text", mem.TextBase, 0x1000, mem.PermRead|mem.PermExec); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Map("data", mem.DataBase, 0x1000, mem.PermRead|mem.PermWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Map("tls", mem.TLSBase, mem.TLSSize, mem.PermRead|mem.PermWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Map("stack", mem.StackTop-mem.StackSize, mem.StackSize, mem.PermRead|mem.PermWrite); err != nil {
		t.Fatal(err)
	}
	code := isa.EncodeAll(prog)
	if err := sp.Segment("text").CopyIn(0, code); err != nil {
		t.Fatal(err)
	}
	c := New(sp, rng.New(1))
	c.RIP = mem.TextBase
	c.FSBase = mem.TLSBase
	c.GPR[isa.RSP] = mem.StackTop
	return c
}

func run(t *testing.T, c *CPU) {
	t.Helper()
	if err := c.Run(10000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestMovAndArithmetic(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 10},
		{Op: isa.MOVRI, R1: isa.RBX, Imm: 32},
		{Op: isa.ADDRR, R1: isa.RAX, R2: isa.RBX}, // rax = 42
		{Op: isa.MOVRR, R1: isa.RCX, R2: isa.RAX},
		{Op: isa.SUBRI, R1: isa.RCX, Imm: 2}, // rcx = 40
		{Op: isa.SHLRI, R1: isa.RCX, Imm: 1}, // rcx = 80
		{Op: isa.SHRRI, R1: isa.RCX, Imm: 2}, // rcx = 20
		{Op: isa.HLT},
	})
	run(t, c)
	if c.GPR[isa.RAX] != 42 || c.GPR[isa.RCX] != 20 {
		t.Fatalf("rax=%d rcx=%d", c.GPR[isa.RAX], c.GPR[isa.RCX])
	}
}

func TestPushPopStack(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0x1234},
		{Op: isa.PUSH, R1: isa.RAX},
		{Op: isa.POP, R1: isa.RBX},
		{Op: isa.HLT},
	})
	run(t, c)
	if c.GPR[isa.RBX] != 0x1234 {
		t.Fatalf("rbx = 0x%x", c.GPR[isa.RBX])
	}
	if c.GPR[isa.RSP] != mem.StackTop {
		t.Fatalf("rsp not restored: 0x%x", c.GPR[isa.RSP])
	}
}

func TestLoadStore(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase)},
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0x5555},
		{Op: isa.STORE, R1: isa.RAX, Base: isa.RBX, Disp: 16},
		{Op: isa.LOAD, R1: isa.RCX, Base: isa.RBX, Disp: 16},
		{Op: isa.HLT},
	})
	run(t, c)
	if c.GPR[isa.RCX] != 0x5555 {
		t.Fatalf("rcx = 0x%x", c.GPR[isa.RCX])
	}
}

func TestTLSAccess(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0x7777},
		{Op: isa.STFS, R1: isa.RAX, Disp: 0x28},
		{Op: isa.LDFS, R1: isa.RBX, Disp: 0x28},
		{Op: isa.HLT},
	})
	run(t, c)
	if c.GPR[isa.RBX] != 0x7777 {
		t.Fatalf("tls round trip: rbx = 0x%x", c.GPR[isa.RBX])
	}
	v, err := c.Mem.ReadU64(mem.TLSBase + 0x28)
	if err != nil || v != 0x7777 {
		t.Fatalf("fs:0x28 = 0x%x, err %v", v, err)
	}
}

func TestXorFSSetsZF(t *testing.T) {
	// The SSP epilogue's core: xor %fs:0x28, %rdx sets ZF iff they match.
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0xbeef},
		{Op: isa.STFS, R1: isa.RAX, Disp: 0x28},
		{Op: isa.MOVRI, R1: isa.RDX, Imm: 0xbeef},
		{Op: isa.XORFS, R1: isa.RDX, Disp: 0x28},
		{Op: isa.HLT},
	})
	run(t, c)
	if !c.ZF {
		t.Fatal("matching canary did not set ZF")
	}
}

func TestConditionalBranches(t *testing.T) {
	// je skips a movi when ZF set.
	skip := isa.Inst{Op: isa.MOVRI, R1: isa.RAX, Imm: 99}
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: 5},
		{Op: isa.CMPRI, R1: isa.RBX, Imm: 5},
		{Op: isa.JE, Disp: int32(skip.Len())},
		skip,
		{Op: isa.HLT},
	})
	run(t, c)
	if c.GPR[isa.RAX] == 99 {
		t.Fatal("je did not branch on ZF")
	}

	c = buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: 5},
		{Op: isa.CMPRI, R1: isa.RBX, Imm: 6},
		{Op: isa.JNE, Disp: int32(skip.Len())},
		skip,
		{Op: isa.HLT},
	})
	run(t, c)
	if c.GPR[isa.RAX] == 99 {
		t.Fatal("jne did not branch on !ZF")
	}
}

func TestCallRetLeave(t *testing.T) {
	// main: call f; hlt.   f: push rbp; mov rsp,rbp; mov 7,rax; leave; ret
	main := []isa.Inst{
		{Op: isa.CALL, Disp: 0}, // patched below
		{Op: isa.HLT},
	}
	f := []isa.Inst{
		{Op: isa.PUSH, R1: isa.RBP},
		{Op: isa.MOVRR, R1: isa.RBP, R2: isa.RSP},
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 7},
		{Op: isa.LEAVE},
		{Op: isa.RET},
	}
	// f starts right after main.
	mainLen := 0
	for _, in := range main {
		mainLen += in.Len()
	}
	main[0].Disp = int32(mainLen - main[0].Len()) // rel to next inst
	c := buildCPU(t, append(main, f...))
	run(t, c)
	if c.GPR[isa.RAX] != 7 {
		t.Fatalf("rax = %d, want 7", c.GPR[isa.RAX])
	}
	if c.GPR[isa.RSP] != mem.StackTop {
		t.Fatalf("stack imbalance: rsp=0x%x", c.GPR[isa.RSP])
	}
}

func TestRdrandDeterministicPerSeed(t *testing.T) {
	prog := []isa.Inst{{Op: isa.RDRAND, R1: isa.RAX}, {Op: isa.HLT}}
	a, b := buildCPU(t, prog), buildCPU(t, prog)
	run(t, a)
	run(t, b)
	if a.GPR[isa.RAX] != b.GPR[isa.RAX] {
		t.Fatal("same seed produced different rdrand values")
	}
	if !a.CF {
		t.Fatal("rdrand did not set CF")
	}
	if a.GPR[isa.RAX] == 0 {
		t.Fatal("rdrand returned 0 on first draw with seed 1")
	}
}

func TestRdtscSplitAcrossRaxRdx(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.RDTSC},
		{Op: isa.SHLRI, R1: isa.RDX, Imm: 0x20},
		{Op: isa.ORRR, R1: isa.RAX, R2: isa.RDX},
		{Op: isa.HLT},
	})
	run(t, c)
	// After reassembly rax holds the full TSC, which equals the cycle count
	// at the moment rdtsc executed (= cost of rdtsc itself).
	if c.GPR[isa.RAX] != isa.RDTSC.Cycles() {
		t.Fatalf("reassembled tsc = %d, want %d", c.GPR[isa.RAX], isa.RDTSC.Cycles())
	}
}

func TestAESMatchesStdlib(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.R13, Imm: 0x1111111111111111},
		{Op: isa.MOVRI, R1: isa.R12, Imm: 0x2222222222222222},
		{Op: isa.MOVQX, X1: isa.XMM1, R1: isa.R13},
		{Op: isa.PUNPCKX, X1: isa.XMM1, R1: isa.R12},
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0x3333333333333333},
		{Op: isa.MOVQX, X1: isa.XMM15, R1: isa.RAX},
		{Op: isa.AESENC},
		{Op: isa.HLT},
	})
	run(t, c)

	var key, block [16]byte
	binary.LittleEndian.PutUint64(key[:8], 0x1111111111111111)
	binary.LittleEndian.PutUint64(key[8:], 0x2222222222222222)
	binary.LittleEndian.PutUint64(block[:8], 0x3333333333333333)
	cipher, err := aes.NewCipher(key[:])
	if err != nil {
		t.Fatal(err)
	}
	cipher.Encrypt(block[:], block[:])
	wantLo := binary.LittleEndian.Uint64(block[:8])
	wantHi := binary.LittleEndian.Uint64(block[8:])
	if c.X[isa.XMM15][0] != wantLo || c.X[isa.XMM15][1] != wantHi {
		t.Fatalf("aes mismatch: got (%x,%x) want (%x,%x)",
			c.X[isa.XMM15][0], c.X[isa.XMM15][1], wantLo, wantHi)
	}
}

func TestXmmLoadStoreCompare(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase)},
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0x0a0b0c0d},
		{Op: isa.MOVQX, X1: isa.XMM15, R1: isa.RAX},
		{Op: isa.MOVHX, X1: isa.XMM15, Base: isa.RBX, Disp: 64}, // loads zeros
		{Op: isa.STX, X1: isa.XMM15, Base: isa.RBX, Disp: 0},
		{Op: isa.CMPX, X1: isa.XMM15, Base: isa.RBX, Disp: 0},
		{Op: isa.HLT},
	})
	run(t, c)
	if !c.ZF {
		t.Fatal("cmpx against just-stored value did not set ZF")
	}
	// Corrupt one byte and re-compare.
	c2 := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: int64(mem.DataBase)},
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0x0a0b0c0d},
		{Op: isa.MOVQX, X1: isa.XMM15, R1: isa.RAX},
		{Op: isa.STX, X1: isa.XMM15, Base: isa.RBX, Disp: 0},
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 0x0a0b0c0e},
		{Op: isa.MOVQX, X1: isa.XMM15, R1: isa.RAX},
		{Op: isa.CMPX, X1: isa.XMM15, Base: isa.RBX, Disp: 0},
		{Op: isa.HLT},
	})
	run(t, c2)
	if c2.ZF {
		t.Fatal("cmpx against corrupted value set ZF")
	}
}

func TestCrashOnUnmappedAccess(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RBX, Imm: 0x100},
		{Op: isa.LOAD, R1: isa.RAX, Base: isa.RBX, Disp: 0},
		{Op: isa.HLT},
	})
	err := c.Run(100)
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("expected CrashError, got %v", err)
	}
	var fault *mem.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("crash does not wrap mem.Fault: %v", err)
	}
}

func TestCrashOnIllegalInstruction(t *testing.T) {
	sp := mem.NewSpace()
	if _, err := sp.Map("text", mem.TextBase, 16, mem.PermRead|mem.PermExec); err != nil {
		t.Fatal(err)
	}
	sp.Segment("text").Data[0] = 0xee
	c := New(sp, rng.New(1))
	c.RIP = mem.TextBase
	var crash *CrashError
	if err := c.Step(); !errors.As(err, &crash) {
		t.Fatalf("expected crash on illegal opcode, got %v", err)
	}
}

func TestCrashOnExecuteData(t *testing.T) {
	c := buildCPU(t, nil)
	c.RIP = mem.DataBase
	var crash *CrashError
	if err := c.Step(); !errors.As(err, &crash) {
		t.Fatalf("expected crash executing data segment, got %v", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	// Infinite loop: jmp -5 back onto itself.
	self := isa.Inst{Op: isa.JMP}
	self.Disp = int32(-self.Len())
	c := buildCPU(t, []isa.Inst{self})
	err := c.Run(50)
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("expected budget crash, got %v", err)
	}
	if c.Insts != 50 {
		t.Fatalf("executed %d instructions, want 50", c.Insts)
	}
}

func TestCycleAccounting(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.NOP},
		{Op: isa.RDRAND, R1: isa.RAX},
		{Op: isa.HLT},
	})
	run(t, c)
	want := isa.NOP.Cycles() + isa.RDRAND.Cycles() + isa.HLT.Cycles()
	if c.Cycles != want {
		t.Fatalf("cycles = %d, want %d", c.Cycles, want)
	}
}

type testSys struct {
	calls []uint64
	halt  bool
}

func (s *testSys) Syscall(cpu *CPU, nr, a1, a2, a3 uint64) (uint64, error) {
	s.calls = append(s.calls, nr)
	if s.halt {
		cpu.Halt()
	}
	return nr + a1, nil
}

func TestSyscallDispatch(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 9},
		{Op: isa.MOVRI, R1: isa.RDI, Imm: 33},
		{Op: isa.SYSCALL},
		{Op: isa.HLT},
	})
	sys := &testSys{}
	c.Sys = sys
	run(t, c)
	if len(sys.calls) != 1 || sys.calls[0] != 9 {
		t.Fatalf("syscall calls = %v", sys.calls)
	}
	if c.GPR[isa.RAX] != 42 {
		t.Fatalf("syscall return in rax = %d, want 42", c.GPR[isa.RAX])
	}
}

func TestSyscallHalt(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.SYSCALL},
		{Op: isa.MOVRI, R1: isa.RBX, Imm: 1}, // must not execute
	})
	c.Sys = &testSys{halt: true}
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.GPR[isa.RBX] == 1 {
		t.Fatal("instruction after exit syscall executed")
	}
}

func TestSyscallWithNoHandlerCrashes(t *testing.T) {
	c := buildCPU(t, []isa.Inst{{Op: isa.SYSCALL}})
	var crash *CrashError
	if err := c.Run(10); !errors.As(err, &crash) {
		t.Fatalf("expected crash, got %v", err)
	}
}

func TestStackOverflowFaults(t *testing.T) {
	// Pushing forever must eventually fault at the stack guard (unmapped
	// memory below the stack segment), not corrupt other segments.
	loop := []isa.Inst{
		{Op: isa.PUSH, R1: isa.RAX},
	}
	self := isa.Inst{Op: isa.JMP}
	self.Disp = int32(-(self.Len() + loop[0].Len()))
	c := buildCPU(t, append(loop, self))
	err := c.Run(1 << 20)
	var crash *CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("expected stack fault, got %v", err)
	}
}

func TestHaltedCPUStaysHalted(t *testing.T) {
	c := buildCPU(t, []isa.Inst{{Op: isa.HLT}})
	run(t, c)
	if err := c.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("step after halt = %v, want ErrHalted", err)
	}
}

func TestWriterTracer(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 1},
		{Op: isa.NOP},
		{Op: isa.HLT},
	})
	var buf bytes.Buffer
	c.SetTracer(&WriterTracer{W: &buf, Limit: 2})
	run(t, c)
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("traced %d lines, want 2 (limit)", lines)
	}
	if !strings.Contains(buf.String(), "movi $1, %rax") {
		t.Fatalf("trace output %q lacks disassembly", buf.String())
	}
}

func TestOpStats(t *testing.T) {
	c := buildCPU(t, []isa.Inst{
		{Op: isa.RDRAND, R1: isa.RAX},
		{Op: isa.NOP},
		{Op: isa.NOP},
		{Op: isa.HLT},
	})
	stats := &OpStats{}
	c.SetTracer(stats)
	run(t, c)
	if stats.Count[isa.NOP] != 2 || stats.Count[isa.RDRAND] != 1 {
		t.Fatalf("counts nop=%d rdrand=%d", stats.Count[isa.NOP], stats.Count[isa.RDRAND])
	}
	insts, cycles := stats.Total()
	if insts != 4 {
		t.Fatalf("total insts %d", insts)
	}
	if cycles != c.Cycles {
		t.Fatalf("stat cycles %d != cpu cycles %d", cycles, c.Cycles)
	}
	var buf bytes.Buffer
	stats.Report(&buf)
	out := buf.String()
	if !strings.Contains(out, "rdrand") || !strings.Contains(out, "nop") {
		t.Fatalf("report %q missing opcodes", out)
	}
	// rdrand (337 cycles) must sort above nop (2 cycles).
	if strings.Index(out, "rdrand") > strings.Index(out, "nop") {
		t.Fatal("report not sorted by cycles")
	}
}

func TestTracerClearable(t *testing.T) {
	c := buildCPU(t, []isa.Inst{{Op: isa.NOP}, {Op: isa.HLT}})
	stats := &OpStats{}
	c.SetTracer(stats)
	c.SetTracer(nil)
	run(t, c)
	if n, _ := stats.Total(); n != 0 {
		t.Fatal("cleared tracer still invoked")
	}
}

// TestRunContextCancellation drives the VM-level cancellation path: an
// infinite loop is aborted by a cancelled context, leaving the CPU
// resumable, and a cost model override changes cycle accounting.
func TestRunContextCancellation(t *testing.T) {
	spin := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 1},
		{Op: isa.JMP, Disp: -int32(isa.JMP.EncodedLen())}, // jump to self
	}

	// Pre-cancelled: returns promptly with the context error.
	c := buildCPU(t, spin)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx, 1<<40); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext: %v, want context.Canceled", err)
	}

	// Cancelled mid-run: the loop must notice within the polling stride.
	c2 := buildCPU(t, spin)
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel2()
	}()
	if err := c2.RunContext(ctx2, 1<<40); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run RunContext: %v, want context.Canceled", err)
	}
	if c2.Insts == 0 || c2.Halted() {
		t.Fatalf("CPU state after cancellation: insts=%d halted=%v", c2.Insts, c2.Halted())
	}
	// The CPU is left where it stopped: a bounded resume still executes.
	before := c2.Insts
	if err := c2.RunContext(context.Background(), 10); err == nil || c2.Insts != before+10 {
		t.Fatalf("resume after cancel: err=%v insts=%d want %d", err, c2.Insts, before+10)
	}
}

// TestCostModelOverride checks the pluggable cycle model.
func TestCostModelOverride(t *testing.T) {
	prog := []isa.Inst{
		{Op: isa.MOVRI, R1: isa.RAX, Imm: 7},
		{Op: isa.HLT},
	}
	c := buildCPU(t, prog)
	c.CostModel = func(isa.Op) uint64 { return 100 }
	run(t, c)
	if c.Cycles != 200 {
		t.Fatalf("flat-100 model: %d cycles for %d insts, want 200", c.Cycles, c.Insts)
	}
}
