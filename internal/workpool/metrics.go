package workpool

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// serviceHist, when installed, records every unit's wall-clock service
// time in nanoseconds. Package-level because the pool is a leaf shared by
// all three engines — threading a handle through each would spread an
// observability argument across every engine signature.
var serviceHist atomic.Pointer[obs.Hist]

// SetMetrics installs (or, with a nil registry, removes) the shard
// service-time histogram. The disabled path in the worker loop is one
// atomic load and nil check per unit; timestamps are only taken when a
// histogram is installed. Wall time is recorded, not virtual cycles: the
// histogram answers "where did real seconds go", the reports answer the
// deterministic question.
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		serviceHist.Store(nil)
		return
	}
	serviceHist.Store(reg.Hist("workpool_unit_service_ns"))
}

// runTimed executes one unit, recording its service time when a histogram
// is installed.
func runTimed(ctx context.Context, unit int, run func(ctx context.Context, unit int) error) error {
	h := serviceHist.Load()
	if h == nil {
		return run(ctx, unit)
	}
	start := time.Now()
	err := run(ctx, unit)
	h.Record(uint64(time.Since(start)))
	return err
}
