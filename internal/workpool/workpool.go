// Package workpool is the sharded worker-pool discipline shared by the
// Monte-Carlo campaign engine, the virtual-time load generator and the
// coverage-guided fuzzer: N self-contained work units (replications or
// shards) dispatched to a bounded pool of goroutines, with one fatal error
// cancelling the rest and context cancellation stopping the feed without
// counting as a failure.
//
// The pool carries no results — each engine writes its unit's outcome into
// its own preallocated slot (unit i is executed exactly once, so distinct
// slots never race) and merges in unit order after Run returns. That merge
// order, not the pool, is what makes every engine's aggregate independent
// of scheduling.
package workpool

import (
	"context"
	"errors"
	"sync"
)

// Snapshot reports the pool's progress at one unit completion: Done units
// have finished (successfully or accounted out-of-band), out of Total.
type Snapshot struct {
	Done, Total int
}

// Option adjusts one Run call.
type Option func(*runConfig)

type runConfig struct {
	progress func(Snapshot)
}

// WithProgress installs a progress callback invoked after every completed
// unit, serialized by the pool (never two calls at once) so observers need
// no locking of their own. The nil-progress path is allocation-free: engines
// leave their streaming hooks threaded through unconditionally and pay only
// a nil check when nobody listens. The callback must not block — it runs on
// a worker goroutine between units.
func WithProgress(fn func(Snapshot)) Option {
	return func(c *runConfig) { c.progress = fn }
}

// Run dispatches unit indices 0..units-1 to a pool of workers goroutines.
// run's contract: return nil when the unit completed (including units whose
// failure the engine accounts out-of-band, like oracle infrastructure
// errors); any other error cancels the pool and is returned. A
// cancellation-class error while ctx is already cancelled stops the worker
// without marking a failure — a cancellation-class error on a live ctx is a
// unit-internal failure and aborts like any other.
//
// Run returns the first fatal error, or ctx.Err() when the context was
// cancelled, or nil. Units that never ran simply left their slots untouched;
// partial merges over those slots are the caller's cancellation story.
func Run(ctx context.Context, units, workers int, run func(ctx context.Context, unit int) error, opts ...Option) error {
	return RunRange(ctx, 0, units, workers, run, opts...)
}

// RunRange is Run over the unit subrange [lo, hi) — the leasing seam the
// distributed fabric shards on. Unit indices keep their global meaning (a
// worker handed the lease [8, 12) runs units 8..11, so per-unit derived
// state like rng streams and budget shares is identical to the single-range
// run); progress snapshots count within the lease (Total = hi-lo).
func RunRange(ctx context.Context, lo, hi, workers int, run func(ctx context.Context, unit int) error, opts ...Option) error {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		fatalErr error
		done     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for unit := range jobs {
				if ctx.Err() != nil {
					return
				}
				err := runTimed(ctx, unit, run)
				if err == nil {
					if cfg.progress != nil {
						mu.Lock()
						done++
						snap := Snapshot{Done: done, Total: hi - lo}
						cfg.progress(snap)
						mu.Unlock()
					}
					continue
				}
				if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
					return
				}
				mu.Lock()
				if fatalErr == nil {
					fatalErr = err
					cancel()
				}
				mu.Unlock()
				return
			}
		}()
	}
feed:
	for unit := lo; unit < hi; unit++ {
		select {
		case jobs <- unit:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if fatalErr != nil {
		return fatalErr
	}
	return ctx.Err()
}

// Share splits an aggregate count across units: unit i of n gets the i'th
// near-equal part of total — the budget-partition helper every sharded
// engine uses.
func Share(total, i, n int) int {
	share := total / n
	if i < total%n {
		share++
	}
	return share
}
