package workpool

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestRunDispatchesEveryUnit(t *testing.T) {
	var (
		mu   sync.Mutex
		seen = map[int]int{}
	)
	err := Run(context.Background(), 17, 4, func(ctx context.Context, unit int) error {
		mu.Lock()
		seen[unit]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 17 {
		t.Fatalf("ran %d/17 units", len(seen))
	}
	for unit, n := range seen {
		if n != 1 {
			t.Fatalf("unit %d ran %d times", unit, n)
		}
	}
}

func TestRunFatalErrorCancelsPool(t *testing.T) {
	boom := errors.New("boom")
	err := Run(context.Background(), 64, 2, func(ctx context.Context, unit int) error {
		if unit == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestWithProgressObservesEveryCompletion(t *testing.T) {
	const units = 23
	var (
		mu    sync.Mutex
		snaps []Snapshot
	)
	err := Run(context.Background(), units, 4, func(ctx context.Context, unit int) error {
		return nil
	}, WithProgress(func(s Snapshot) {
		// The pool serializes callbacks, but keep the slice append safe
		// against the test's own final read anyway.
		mu.Lock()
		snaps = append(snaps, s)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != units {
		t.Fatalf("got %d progress snapshots, want %d", len(snaps), units)
	}
	// Done is monotonically increasing 1..units because the pool serializes
	// the callback under its completion lock.
	for i, s := range snaps {
		if s.Done != i+1 || s.Total != units {
			t.Fatalf("snapshot %d = %+v, want Done=%d Total=%d", i, s, i+1, units)
		}
	}
}

func TestNilProgressPathAllocationFree(t *testing.T) {
	// The progress hook is threaded through unconditionally; with no
	// listener the per-unit cost must stay a nil check. Exercise the
	// completion path with a single worker (no goroutine churn inside the
	// measured region is impossible — Run spawns workers — so measure the
	// delta against a progress-carrying run instead).
	base := testing.AllocsPerRun(100, func() {
		_ = Run(context.Background(), 4, 1, func(ctx context.Context, unit int) error { return nil })
	})
	withNil := testing.AllocsPerRun(100, func() {
		var opts []Option
		_ = Run(context.Background(), 4, 1, func(ctx context.Context, unit int) error { return nil }, opts...)
	})
	if withNil > base {
		t.Fatalf("nil-progress run allocates more than baseline: %v > %v", withNil, base)
	}
}

func TestShare(t *testing.T) {
	for _, tc := range []struct {
		total, n int
		want     []int
	}{
		{10, 3, []int{4, 3, 3}},
		{3, 4, []int{1, 1, 1, 0}},
		{0, 2, []int{0, 0}},
	} {
		sum := 0
		for i := 0; i < tc.n; i++ {
			got := Share(tc.total, i, tc.n)
			if got != tc.want[i] {
				t.Fatalf("Share(%d, %d, %d) = %d, want %d", tc.total, i, tc.n, got, tc.want[i])
			}
			sum += got
		}
		if sum != tc.total {
			t.Fatalf("Share(%d, _, %d) sums to %d", tc.total, tc.n, sum)
		}
	}
}
