package pssp

import (
	"fmt"

	"repro/internal/apps"
)

// AppInfo describes one program of the built-in application suite: the 28
// SPEC CPU2006 analogs, the web-server and database analogs, and the
// vulnerable attack targets.
type AppInfo struct {
	// Name identifies the app for CompileApp.
	Name string
	// Server reports whether the app blocks in accept and must be driven
	// with Serve (batch apps run with Run).
	Server bool
	// Request is a benign request payload for servers (nil for batch apps).
	Request []byte
}

// Apps lists the built-in application suite.
func Apps() []AppInfo {
	all := apps.All()
	out := make([]AppInfo, 0, len(all))
	for _, a := range all {
		out = append(out, AppInfo{
			Name:    a.Name,
			Server:  a.Kind == apps.KindServer,
			Request: a.Request,
		})
	}
	return out
}

// App returns the named app's info.
func App(name string) (AppInfo, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return AppInfo{}, false
}

// CompileApp compiles a built-in application by name under the machine's
// (or the options') scheme.
func (m *Machine) CompileApp(name string, opts ...CompileOption) (*Image, error) {
	for _, a := range apps.All() {
		if a.Name == name {
			return m.Compile(a.Prog, opts...)
		}
	}
	return nil, fmt.Errorf("pssp: unknown app %q", name)
}
