package pssp

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/rng"
)

// StrategyInfo describes one registered attack strategy.
type StrategyInfo struct {
	// Name is the registry key accepted by AttackConfig.Strategy and
	// CampaignConfig.Strategy.
	Name string
	// Description is a one-line summary.
	Description string
}

// AttackStrategies lists the registered adversary models, ordered by name:
// the paper's byte-by-byte (§II-B) and exhaustive word search (§III-C) plus
// chunk-wise guessing, uniform random sampling, and the adaptive
// restart-on-detection attacker.
func AttackStrategies() []StrategyInfo {
	ss := attack.Strategies()
	out := make([]StrategyInfo, len(ss))
	for i, s := range ss {
		out[i] = StrategyInfo{Name: s.Name(), Description: s.Description()}
	}
	return out
}

// Replica returns a machine configured like m (scheme, engine, budgets)
// but running on the stream'th derived entropy stream of m's seed.
// Replicas are how one logical machine serves concurrent trials: a Machine
// is single-threaded by design, so each worker gets its own replica instead
// of locking shared state. Replica consumes no entropy from m — the same
// stream index always yields the same machine. WithStats/WithTrace
// collectors are NOT carried over: they are single-machine accumulators,
// not safe to share across concurrently running replicas.
func (m *Machine) Replica(stream uint64) *Machine {
	return m.withSeed(rng.Mix(m.cfg.seed, stream))
}

// withSeed clones m's configuration (minus instrumentation collectors)
// onto a fresh kernel seeded with seed, via kernel.ReplicaSeeded so the
// kernel-level configuration is inherited in one place.
func (m *Machine) withSeed(seed uint64) *Machine {
	cfg := m.cfg
	cfg.seed = seed
	cfg.stats, cfg.traceW = nil, nil
	return &Machine{cfg: cfg, k: m.k.ReplicaSeeded(seed)}
}

// CampaignConfig parameterizes Machine.Campaign. The zero value runs one
// byte-by-byte replication against the built-in vulnerable servers under
// the machine's attack budget.
type CampaignConfig struct {
	// Strategy selects the adversary model by registry name (see
	// AttackStrategies); empty means byte-by-byte.
	Strategy string
	// Replications is the number of independent attack replications
	// (default 1). Replication i attacks a fresh victim machine derived
	// from (Seed, i), so outcomes are i.i.d. across replications and
	// independent of scheduling.
	Replications int
	// Workers bounds how many replications run concurrently (default
	// GOMAXPROCS). Workers changes wall-clock time only: for a fixed Seed
	// the aggregates are bit-identical at any worker count.
	Workers int
	// Seed drives the whole campaign (victim entropy and attacker
	// guesses); 0 means the machine's seed.
	Seed uint64
	// Attack describes the victim frame, as in Server.Attack.
	Attack AttackConfig
	// Progress, when non-nil, receives a running tally after every
	// completed replication, serialized by the engine. Wall-clock
	// observability only — it never affects the deterministic aggregate.
	Progress func(CampaignProgress)
}

// CampaignProgress is a campaign's running tally; see campaign.Progress.
type CampaignProgress = campaign.Progress

// CampaignResult is a campaign's deterministic aggregate: success counts
// and rate, trials-to-success order statistics, detection rate, total
// oracle calls and victim-side cost, infrastructure-error tallies, and the
// per-replication outcomes. See campaign.Aggregate for the field docs.
type CampaignResult = campaign.Aggregate

// Campaign runs a sharded Monte-Carlo attack campaign: cfg.Replications
// independent runs of the selected strategy, each against a fresh
// fork-server victim booted from img on a replica machine, sharded across
// cfg.Workers concurrent oracles.
//
// Oracle infrastructure failures are surfaced in the result's OracleErrors/
// OracleErr instead of being folded into trial statistics; if no
// replication completes and such a failure occurred, Campaign returns it.
// On cancellation the partial aggregate of the completed replications is
// returned alongside ctx.Err().
func (m *Machine) Campaign(ctx context.Context, img *Image, cfg CampaignConfig) (*CampaignResult, error) {
	plan, runner, err := m.campaignPlan(img, cfg)
	if err != nil {
		return nil, err
	}
	agg, err := campaign.Run(ctx, plan, runner)
	if err != nil {
		return agg, err
	}
	if agg.Completed == 0 && agg.OracleErr != nil {
		return agg, agg.OracleErr
	}
	return agg, nil
}

// campaignPlan resolves cfg into the engine configuration and the
// per-replication runner — the shared front half of Campaign,
// CampaignShards, and (plan only, img may be nil) CampaignPlan.
func (m *Machine) campaignPlan(img *Image, cfg CampaignConfig) (campaign.Config, campaign.Runner, error) {
	// The strategy may arrive on either level — CampaignConfig.Strategy or
	// the embedded AttackConfig (the field Server.Attack honours). They
	// must resolve to the same adversary (aliases like "bbb" and
	// "byte-by-byte" agree); genuinely conflicting names are an error,
	// never a silent default.
	attackCfg := cfg.Attack
	if cfg.Strategy != "" {
		if attackCfg.Strategy != "" {
			outer, err := attack.StrategyByName(cfg.Strategy)
			if err != nil {
				return campaign.Config{}, nil, err
			}
			inner, err := attack.StrategyByName(attackCfg.Strategy)
			if err != nil {
				return campaign.Config{}, nil, err
			}
			if outer.Name() != inner.Name() {
				return campaign.Config{}, nil, fmt.Errorf("pssp: conflicting strategies %q (CampaignConfig.Strategy) and %q (Attack.Strategy)",
					cfg.Strategy, attackCfg.Strategy)
			}
		}
		attackCfg.Strategy = cfg.Strategy
	}
	strat, acfg, err := m.resolveAttack(attackCfg)
	if err != nil {
		return campaign.Config{}, nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = m.cfg.seed
	}

	runner := func(ctx context.Context, rep int, r *rng.Source) (campaign.Outcome, error) {
		// The victim's entropy stream is a second-level derivation of the
		// replication stream, so attacker guesses (r) and victim canaries
		// never draw from the same splitmix state.
		victim := m.withSeed(rng.Mix(rng.Mix(seed, uint64(rep)), 1))
		srv, err := victim.Serve(ctx, img)
		if err != nil {
			return campaign.Outcome{}, attack.WrapOracleErr(err)
		}
		res, err := strat.Attack(ctx, &ctxOracle{ctx: ctx, s: srv}, acfg, r)
		if err != nil {
			return campaign.Outcome{}, err
		}
		// Confirm a success against the victim's real TLS canary so a
		// lucky-survival false success is distinguishable in the
		// aggregates (VerifiedSuccesses vs Successes). A canary that
		// cannot be read is a verification failure of the experiment, not
		// an unverified success — surface it.
		verified := false
		if res.Success {
			real, err := srv.Canary()
			if err != nil {
				return campaign.Outcome{}, fmt.Errorf("pssp: campaign: verifying replication %d: %w", rep, err)
			}
			verified = res.RecoveredWord() == real
		}
		return campaign.Outcome{
			Success:     res.Success,
			Verified:    verified,
			Trials:      res.Trials,
			FailedAt:    res.FailedAt,
			Restarts:    res.Restarts,
			Detections:  srv.Crashes(),
			OracleCalls: srv.Requests(),
			Cycles:      srv.TotalCycles(),
			Insts:       srv.TotalInsts(),
			Mem:         srv.Footprint(),
		}, nil
	}

	return campaign.Config{
		Label:        strat.Name(),
		Replications: cfg.Replications,
		Workers:      cfg.Workers,
		Seed:         seed,
		Progress:     cfg.Progress,
	}, runner, nil
}
