package pssp_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/pssp"
)

// TestCampaignDeterministicAcrossWorkerCounts is the determinism contract:
// a fixed seed must yield bit-identical aggregates whether the campaign
// runs sequentially or sharded over many workers.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemePSSP))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	var results []*pssp.CampaignResult
	for _, workers := range []int{1, 4, 16} {
		res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
			Strategy:     "byte-by-byte",
			Replications: 6,
			Workers:      workers,
			Attack:       pssp.AttackConfig{MaxTrials: 300},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Completed != 6 {
			t.Fatalf("workers=%d: completed %d/6", workers, res.Completed)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("aggregates diverged across worker counts:\n%+v\nvs\n%+v",
				results[0], results[i])
		}
	}
	// P-SSP under a 300-trial budget: every replication must fail (byte-by-
	// byte gives up once a position exhausts all 256 values), and nearly
	// every trial is detected — only 1-in-256 lucky survivals get through.
	res := results[0]
	if res.Successes != 0 {
		t.Fatalf("byte-by-byte beat P-SSP: %+v", res)
	}
	if res.Trials == 0 || res.Trials > 6*300 {
		t.Fatalf("trials %d outside (0, %d]", res.Trials, 6*300)
	}
	if dr := res.DetectionRate(); dr < 0.9 {
		t.Fatalf("detection rate %f, want ~1 against P-SSP", dr)
	}
}

// TestCampaignSSPSuccessStatistics checks the other side: against SSP the
// byte-by-byte campaign succeeds in every replication, with per-replication
// trial counts in the paper's byte-by-byte range and varying canaries
// across replications.
func TestCampaignSSPSuccessStatistics(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(pssp.SchemeSSP))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Campaign(ctx, img, pssp.CampaignConfig{Replications: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "byte-by-byte" {
		t.Fatalf("label %q", res.Label)
	}
	if res.SuccessRate() != 1 {
		t.Fatalf("success rate %f against SSP: %+v", res.SuccessRate(), res)
	}
	if res.VerifiedSuccesses != res.Successes {
		t.Fatalf("only %d/%d successes verified against the real canary", res.VerifiedSuccesses, res.Successes)
	}
	s := res.TrialsToSuccess
	if s.N != 5 || s.Min < 8 || s.Max > 2048 {
		t.Fatalf("trials-to-success %+v outside byte-by-byte range", s)
	}
	if s.Min == s.Max {
		t.Fatal("all replications cost identical trials — victims are not independent")
	}
	if res.MaxMem == 0 || res.Cycles == 0 || res.OracleCalls < res.Trials {
		t.Fatalf("aggregate missing cost accounting: %+v", res)
	}
}

// TestCampaignStrategies runs every registered strategy one replication
// each, under a small budget, asserting the label and trial accounting.
func TestCampaignStrategies(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(11), pssp.WithScheme(pssp.SchemePSSP))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range pssp.AttackStrategies() {
		res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
			Strategy:     info.Name,
			Replications: 2,
			Attack:       pssp.AttackConfig{MaxTrials: 64},
		})
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if res.Label != info.Name {
			t.Errorf("%s: label %q", info.Name, res.Label)
		}
		if res.Completed != 2 || res.Trials != 2*64 {
			t.Errorf("%s: completed %d trials %d, want 2 and 128", info.Name, res.Completed, res.Trials)
		}
		if res.Successes != 0 {
			t.Errorf("%s: succeeded against P-SSP in 64 trials", info.Name)
		}
	}
	if _, err := m.Campaign(ctx, img, pssp.CampaignConfig{Strategy: "bogus"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	// The embedded AttackConfig.Strategy is honoured, aliases of the same
	// strategy agree, and genuine conflicts are rejected.
	res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
		Strategy: "bbb",
		Attack:   pssp.AttackConfig{Strategy: "byte-by-byte", MaxTrials: 16},
	})
	if err != nil || res.Label != "byte-by-byte" {
		t.Errorf("alias agreement rejected: %v, label %q", err, res.Label)
	}
	res, err = m.Campaign(ctx, img, pssp.CampaignConfig{
		Attack: pssp.AttackConfig{Strategy: "random", MaxTrials: 16},
	})
	if err != nil || res.Label != "random" {
		t.Errorf("Attack.Strategy alone ignored: %v, label %q", err, res.Label)
	}
	if _, err := m.Campaign(ctx, img, pssp.CampaignConfig{
		Strategy: "random",
		Attack:   pssp.AttackConfig{Strategy: "adaptive", MaxTrials: 16},
	}); err == nil {
		t.Error("conflicting strategies accepted")
	}
}

// TestCampaignCancellationPartialAggregates cancels a large campaign
// mid-flight and asserts the partial aggregate is well-formed.
func TestCampaignCancellationPartialAggregates(t *testing.T) {
	m := pssp.NewMachine(pssp.WithSeed(3), pssp.WithScheme(pssp.SchemePSSP))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
		Replications: 10000,
		Workers:      2,
		Attack:       pssp.AttackConfig{MaxTrials: 2048},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if res == nil {
		t.Fatal("no partial aggregate returned")
	}
	if res.Completed >= res.Requested {
		t.Fatalf("campaign of 10000 heavy replications finished in 60ms? %+v", res)
	}
	// Whatever completed must be internally consistent.
	if len(res.Outcomes) != res.Completed {
		t.Fatalf("outcomes %d vs completed %d", len(res.Outcomes), res.Completed)
	}
	for i := 1; i < len(res.Outcomes); i++ {
		if res.Outcomes[i].Rep <= res.Outcomes[i-1].Rep {
			t.Fatal("outcomes not in replication order")
		}
	}
}

// TestReplicaMachines pins the facade replica semantics: deterministic
// derivation, configuration inheritance, and independence across streams.
func TestReplicaMachines(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(42), pssp.WithScheme(pssp.SchemeSSP), pssp.WithAttackBudget(123))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	canary := func(mm *pssp.Machine) uint64 {
		srv, err := mm.Serve(ctx, img)
		if err != nil {
			t.Fatal(err)
		}
		c, err := srv.Canary()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	r0 := m.Replica(0)
	if r0.Scheme() != m.Scheme() || r0.AttackBudget() != 123 || r0.Engine() != m.Engine() {
		t.Fatal("replica dropped configuration")
	}
	if canary(m.Replica(1)) != canary(m.Replica(1)) {
		t.Fatal("same replica stream produced different victims")
	}
	if canary(m.Replica(1)) == canary(m.Replica(2)) {
		t.Fatal("distinct replica streams produced the same victim")
	}
}

// TestCampaignWithStatsMachineIsRaceFree pins the replica instrumentation
// rule: WithStats/WithTrace collectors are single-machine accumulators, so
// campaign victim replicas must not share the parent machine's collector —
// under -race a shared collector across 4 workers would be caught here.
func TestCampaignWithStatsMachineIsRaceFree(t *testing.T) {
	ctx := context.Background()
	stats := pssp.NewStats()
	m := pssp.NewMachine(pssp.WithSeed(13), pssp.WithScheme(pssp.SchemePSSP), pssp.WithStats(stats))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
		Replications: 8,
		Workers:      4,
		Attack:       pssp.AttackConfig{MaxTrials: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d/8", res.Completed)
	}
}
