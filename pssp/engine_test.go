package pssp_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/pssp"
)

// engines is the full three-engine differential matrix. Index 0 is the
// reference the others are compared against.
var engines = pssp.Engines()

// TestEngineGoldenBatch runs the batch program under every engine for every
// scheme and asserts bit-identical results: exit code, output bytes, and the
// exact instruction and cycle counts.
func TestEngineGoldenBatch(t *testing.T) {
	ctx := context.Background()
	for _, scheme := range pssp.Schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			type outcome struct {
				exit          uint64
				cycles, insts uint64
				out           string
			}
			got := make([]outcome, len(engines))
			for i, e := range engines {
				m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithEngine(e))
				res, err := m.Pipeline().Compile(batchProg(), pssp.CompileScheme(scheme)).Run(ctx)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				got[i] = outcome{res.ExitCode, res.Cycles, res.Insts, string(res.Output)}
			}
			for i := 1; i < len(engines); i++ {
				if got[i] != got[0] {
					t.Fatalf("engines diverged:\n%s: %+v\n%s: %+v",
						engines[0], got[0], engines[i], got[i])
				}
			}
		})
	}
}

// TestEngineGoldenAttack runs the byte-by-byte attack against an
// SSP-compiled vulnerable server under every engine with the same seed and
// asserts identical attack outcomes: success, trial count, recovered canary,
// and the per-request crash tally.
func TestEngineGoldenAttack(t *testing.T) {
	ctx := context.Background()
	for _, scheme := range []pssp.Scheme{pssp.SchemeSSP, pssp.SchemePSSP} {
		t.Run(scheme.String(), func(t *testing.T) {
			type outcome struct {
				success   bool
				trials    int
				recovered uint64
				failedAt  int
				crashes   int
				cycles    uint64
			}
			got := make([]outcome, len(engines))
			for i, e := range engines {
				m := pssp.NewMachine(
					pssp.WithSeed(2018),
					pssp.WithScheme(scheme),
					pssp.WithEngine(e),
					pssp.WithAttackBudget(3000),
				)
				srv, err := m.Pipeline().CompileApp("nginx-vuln").Serve(ctx)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				res, err := srv.Attack(ctx, pssp.AttackConfig{})
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				got[i] = outcome{res.Success, res.Trials, res.RecoveredWord(), res.FailedAt,
					srv.Crashes(), srv.TotalCycles()}
			}
			for i := 1; i < len(engines); i++ {
				if got[i] != got[0] {
					t.Fatalf("attack outcomes diverged:\n%s: %+v\n%s: %+v",
						engines[0], got[0], engines[i], got[i])
				}
			}
		})
	}
}

// TestEngineGoldenTables regenerates every paper table under every engine
// with a scaled-down config and asserts the machine-readable values are
// identical, key for key.
func TestEngineGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full-table golden comparison is not -short")
	}
	drivers := []struct {
		name string
		run  func(harness.Config) (*harness.Table, error)
	}{
		{"table1", harness.Table1},
		{"table2", harness.Table2},
		{"table3", harness.Table3},
		{"table4", harness.Table4},
		{"table5", func(c harness.Config) (*harness.Table, error) { return harness.Table5(c, false) }},
	}
	cfg := harness.Config{Seed: 2018, WebRequests: 4, DBQueries: 2, AttackBudget: 600}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			vals := make([]map[string]float64, len(engines))
			for i, e := range engines {
				c := cfg
				c.Engine = e
				tab, err := d.run(c)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				vals[i] = tab.Values
			}
			for i := 1; i < len(engines); i++ {
				if len(vals[i]) != len(vals[0]) {
					t.Fatalf("value sets differ in size: %s=%d %s=%d",
						engines[0], len(vals[0]), engines[i], len(vals[i]))
				}
				for k, v := range vals[0] {
					w, ok := vals[i][k]
					if !ok {
						t.Errorf("%s run missing value %q", engines[i], k)
						continue
					}
					if v != w {
						t.Errorf("%s: %s=%v %s=%v", k, engines[0], v, engines[i], w)
					}
				}
			}
		})
	}
}

// TestEngineGoldenFuzz runs a short fixed-seed fuzzing session under every
// engine and asserts the serialized reports are byte-identical — coverage
// edges, corpus growth, crash findings and minimization included.
func TestEngineGoldenFuzz(t *testing.T) {
	ctx := context.Background()
	reports := make([][]byte, len(engines))
	for i, e := range engines {
		m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemeSSP), pssp.WithEngine(e))
		img, err := m.CompileApp("nginx-vuln")
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		rep, err := m.Fuzz(ctx, img, pssp.FuzzConfig{Execs: 400})
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("%s: marshal: %v", e, err)
		}
		reports[i] = b
	}
	for i := 1; i < len(engines); i++ {
		if string(reports[i]) != string(reports[0]) {
			t.Fatalf("fuzz reports diverged:\n%s: %s\n%s: %s",
				engines[0], reports[0], engines[i], reports[i])
		}
	}
}

// TestEngineBudgetClassification pins the satellite fix: a watchdog kill is
// classified as ErrBudgetExhausted by errors.Is from every engine.
func TestEngineBudgetClassification(t *testing.T) {
	ctx := context.Background()
	for _, e := range engines {
		t.Run(fmt.Sprint(e), func(t *testing.T) {
			m := pssp.NewMachine(pssp.WithEngine(e), pssp.WithMaxInstructions(2000))
			_, err := m.Pipeline().Compile(spinProg()).Run(ctx)
			if !errors.Is(err, pssp.ErrCrash) || !errors.Is(err, pssp.ErrBudgetExhausted) {
				t.Fatalf("budget kill = %v, want ErrCrash and ErrBudgetExhausted", err)
			}
			if errors.Is(err, pssp.ErrCanaryDetected) {
				t.Fatal("budget kill must not match ErrCanaryDetected")
			}
		})
	}
}

// TestParseEngine pins the engine-name parsing contract: every canonical
// name round-trips (case-insensitively), and unknown names get an error
// enumerating all engines, core.ParseScheme-style.
func TestParseEngine(t *testing.T) {
	for _, e := range pssp.Engines() {
		got, err := pssp.ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", e.String(), got, err, e)
		}
		got, err = pssp.ParseEngine("  " + e.String() + " ")
		if err != nil || got != e {
			t.Fatalf("ParseEngine with whitespace = %v, %v; want %v", got, err, e)
		}
	}
	if got, err := pssp.ParseEngine("Compiled"); err != nil || got != pssp.EngineCompiled {
		t.Fatalf("ParseEngine(\"Compiled\") = %v, %v; want EngineCompiled", got, err)
	}
	_, err := pssp.ParseEngine("jit")
	if err == nil {
		t.Fatal("ParseEngine(\"jit\") succeeded, want error")
	}
	want := `pssp: unknown engine "jit" (engines: interpreter, predecoded, compiled)`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}
