package pssp_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/pssp"
)

var engines = []pssp.Engine{pssp.EnginePredecoded, pssp.EngineInterpreter}

// TestEngineGoldenBatch runs the batch program under both engines for every
// scheme and asserts bit-identical results: exit code, output bytes, and the
// exact instruction and cycle counts.
func TestEngineGoldenBatch(t *testing.T) {
	ctx := context.Background()
	for _, scheme := range pssp.Schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			type outcome struct {
				exit          uint64
				cycles, insts uint64
				out           string
			}
			var got [2]outcome
			for i, e := range engines {
				m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithEngine(e))
				res, err := m.Pipeline().Compile(batchProg(), pssp.CompileScheme(scheme)).Run(ctx)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				got[i] = outcome{res.ExitCode, res.Cycles, res.Insts, string(res.Output)}
			}
			if got[0] != got[1] {
				t.Fatalf("engines diverged:\npredecoded:  %+v\ninterpreter: %+v", got[0], got[1])
			}
		})
	}
}

// TestEngineGoldenAttack runs the byte-by-byte attack against an
// SSP-compiled vulnerable server under both engines with the same seed and
// asserts identical attack outcomes: success, trial count, recovered canary,
// and the per-request crash tally.
func TestEngineGoldenAttack(t *testing.T) {
	ctx := context.Background()
	for _, scheme := range []pssp.Scheme{pssp.SchemeSSP, pssp.SchemePSSP} {
		t.Run(scheme.String(), func(t *testing.T) {
			type outcome struct {
				success   bool
				trials    int
				recovered uint64
				failedAt  int
				crashes   int
				cycles    uint64
			}
			var got [2]outcome
			for i, e := range engines {
				m := pssp.NewMachine(
					pssp.WithSeed(2018),
					pssp.WithScheme(scheme),
					pssp.WithEngine(e),
					pssp.WithAttackBudget(3000),
				)
				srv, err := m.Pipeline().CompileApp("nginx-vuln").Serve(ctx)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				res, err := srv.Attack(ctx, pssp.AttackConfig{})
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				got[i] = outcome{res.Success, res.Trials, res.RecoveredWord(), res.FailedAt,
					srv.Crashes(), srv.TotalCycles()}
			}
			if got[0] != got[1] {
				t.Fatalf("attack outcomes diverged:\npredecoded:  %+v\ninterpreter: %+v", got[0], got[1])
			}
		})
	}
}

// TestEngineGoldenTables regenerates every paper table under both engines
// with a scaled-down config and asserts the machine-readable values are
// identical, key for key.
func TestEngineGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full-table golden comparison is not -short")
	}
	drivers := []struct {
		name string
		run  func(harness.Config) (*harness.Table, error)
	}{
		{"table1", harness.Table1},
		{"table2", harness.Table2},
		{"table3", harness.Table3},
		{"table4", harness.Table4},
		{"table5", func(c harness.Config) (*harness.Table, error) { return harness.Table5(c, false) }},
	}
	cfg := harness.Config{Seed: 2018, WebRequests: 4, DBQueries: 2, AttackBudget: 600}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			var vals [2]map[string]float64
			for i, e := range engines {
				c := cfg
				c.Engine = e
				tab, err := d.run(c)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				vals[i] = tab.Values
			}
			if len(vals[0]) != len(vals[1]) {
				t.Fatalf("value sets differ in size: %d vs %d", len(vals[0]), len(vals[1]))
			}
			for k, v := range vals[0] {
				w, ok := vals[1][k]
				if !ok {
					t.Errorf("interpreter run missing value %q", k)
					continue
				}
				if v != w {
					t.Errorf("%s: predecoded=%v interpreter=%v", k, v, w)
				}
			}
		})
	}
}

// TestEngineBudgetClassification pins the satellite fix: a watchdog kill is
// classified as ErrBudgetExhausted by errors.Is from both engines.
func TestEngineBudgetClassification(t *testing.T) {
	ctx := context.Background()
	for _, e := range engines {
		t.Run(fmt.Sprint(e), func(t *testing.T) {
			m := pssp.NewMachine(pssp.WithEngine(e), pssp.WithMaxInstructions(2000))
			_, err := m.Pipeline().Compile(spinProg()).Run(ctx)
			if !errors.Is(err, pssp.ErrCrash) || !errors.Is(err, pssp.ErrBudgetExhausted) {
				t.Fatalf("budget kill = %v, want ErrCrash and ErrBudgetExhausted", err)
			}
			if errors.Is(err, pssp.ErrCanaryDetected) {
				t.Fatal("budget kill must not match ErrCanaryDetected")
			}
		})
	}
}
