package pssp

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
)

// Sentinel errors. All crash-shaped failures returned by the facade are
// *CrashError values that match ErrCrash — and the more specific sentinels
// where applicable — under errors.Is.
var (
	// ErrCrash matches any abnormal process termination: memory fault,
	// illegal instruction, canary abort, watchdog kill.
	ErrCrash = errors.New("pssp: process crashed")
	// ErrCanaryDetected matches crashes raised by a canary check
	// (__stack_chk_fail's abort) — an overflow was detected.
	ErrCanaryDetected = errors.New("pssp: canary check detected stack smashing")
	// ErrBudgetExhausted matches watchdog kills: the process exceeded the
	// machine's instruction budget (see WithMaxInstructions).
	ErrBudgetExhausted = errors.New("pssp: instruction budget exhausted")
	// ErrHalted is returned when running a process that already finished.
	ErrHalted = errors.New("pssp: process already halted")
	// ErrAwaitingRequest is returned by Process.Run when the program blocks
	// in accept(2): it is a server and must be driven via Machine.Serve.
	ErrAwaitingRequest = errors.New("pssp: process is blocked in accept awaiting a request")
	// ErrServerClosed is returned by Server.Handle after Server.Close (or
	// Machine.Close) retired the parked parent.
	ErrServerClosed = kernel.ErrServerClosed
)

// CrashError reports an abnormal process termination with enough structure
// to classify it without string matching.
type CrashError struct {
	// PID is the simulated process id.
	PID int
	// Reason is the human-readable crash description.
	Reason string
	cause  error
}

func newCrashError(pid int, reason string, cause error) *CrashError {
	return &CrashError{PID: pid, Reason: reason, cause: cause}
}

// Error implements error.
func (e *CrashError) Error() string {
	return fmt.Sprintf("pssp: process %d crashed: %s", e.PID, e.Reason)
}

// Unwrap returns the underlying kernel/VM error.
func (e *CrashError) Unwrap() error { return e.cause }

// Is wires the sentinel taxonomy into errors.Is.
func (e *CrashError) Is(target error) bool {
	switch target {
	case ErrCrash:
		return true
	case ErrCanaryDetected:
		return errors.Is(e.cause, kernel.ErrStackSmash)
	case ErrBudgetExhausted:
		return errors.Is(e.cause, kernel.ErrBudget)
	}
	return false
}
