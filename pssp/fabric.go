// fabric.go is the facade's distributed seam: the plan/shard/merge triple
// each evaluation engine exposes to internal/fabric. A coordinator resolves
// a job once into its engine plan, workers execute shard subranges of that
// plan via the *Shards methods (reusing the exact runner/boot closures the
// single-process paths use), and the coordinator folds the returned wire
// partials with the Merge* functions — the same fold the local engines run,
// so distributed reports are bit-identical to local ones by construction.
package pssp

import (
	"context"

	"repro/internal/campaign"
	"repro/internal/fuzz"
	"repro/internal/loadgen"
)

// CampaignPlan is a campaign's resolved engine configuration; see
// campaign.Config.
type CampaignPlan = campaign.Config

// CampaignPartial is the wire-form result of a campaign replication range;
// see campaign.Partial.
type CampaignPartial = campaign.Partial

// LoadPlan is a workload's resolved engine configuration; see
// loadgen.Config. It is resolved but not normalized — callers normalize
// per run (via its Normalize method), which matters for sweeps: each sweep
// point scales the resolved scenario with loadgen.Scale and then
// normalizes, exactly as LoadSweep does.
type LoadPlan = loadgen.Config

// LoadPartial is the wire-form result of one workload shard; see
// loadgen.Partial.
type LoadPartial = loadgen.Partial

// LoadSweepPoint is one offered-load step of a sweep; see loadgen.SweepPoint.
type LoadSweepPoint = loadgen.SweepPoint

// FuzzPlan is a fuzzing run's resolved engine configuration; see
// fuzz.Config.
type FuzzPlan = fuzz.Config

// FuzzPartial is the wire-form result of one fuzzing shard; see
// fuzz.Partial.
type FuzzPartial = fuzz.Partial

// FuzzStallSummary reports a continuous (until-stall) fuzzing run's
// convergence: psspfuzz -until-stall locally, Coordinator.FuzzUntilStall
// distributed. Both loops share the semantics — round r>0 re-derives its
// mutation seed from (seed, r), seeds itself with everything discovered so
// far, and stops once the frontier hash is unchanged for StallRounds
// consecutive rounds — so their reports stay byte-comparable.
type FuzzStallSummary struct {
	// Rounds is the number of rounds executed; StallRounds the configured
	// consecutive-unchanged-frontier stop threshold.
	Rounds      int `json:"rounds"`
	StallRounds int `json:"stall_rounds"`
	// TotalExecs sums executions across rounds (the final report's Execs
	// covers only the last round).
	TotalExecs int `json:"total_execs"`
}

// CampaignPlan resolves cfg exactly as Campaign would — strategy-conflict
// validation, attack-frame defaults, seed defaulting — and returns the
// engine plan a coordinator partitions into leases. No image is needed:
// resolution touches only the machine configuration and the strategy
// registry, so a coordinator resolves plans without booting victims.
func (m *Machine) CampaignPlan(cfg CampaignConfig) (CampaignPlan, error) {
	plan, _, err := m.campaignPlan(nil, cfg)
	return plan, err
}

// CampaignShards runs only replications [lo, hi) of the campaign — the
// fabric worker's slice of a lease. Replication indices keep their global
// meaning, so every victim machine and attacker stream is identical to the
// single-process run's.
func (m *Machine) CampaignShards(ctx context.Context, img *Image, cfg CampaignConfig, lo, hi int) (*CampaignPartial, error) {
	plan, runner, err := m.campaignPlan(img, cfg)
	if err != nil {
		return nil, err
	}
	return campaign.RunShards(ctx, plan, lo, hi, runner)
}

// MergeCampaignPartials folds worker partials into the aggregate Campaign
// would have produced for the same plan; order- and duplicate-insensitive
// (see campaign.MergePartials).
func MergeCampaignPartials(plan CampaignPlan, parts []*CampaignPartial) *CampaignResult {
	return campaign.MergePartials(plan, parts)
}

// LoadPlan resolves cfg exactly as LoadTest would — mix defaulting, probe
// strategy resolution, arrival-model defaults — and returns the engine
// scenario a coordinator partitions into shard leases (after normalizing).
func (m *Machine) LoadPlan(img *Image, cfg WorkloadConfig) (LoadPlan, error) {
	return m.resolveWorkload(img, cfg)
}

// LoadShards runs only shards [lo, hi) of the workload. Shard indices keep
// their global meaning, so client partitions, rng streams, and budget
// shares are identical to the single-process run's.
func (m *Machine) LoadShards(ctx context.Context, img *Image, cfg WorkloadConfig, lo, hi int) ([]*LoadPartial, error) {
	lc, err := m.resolveWorkload(img, cfg)
	if err != nil {
		return nil, err
	}
	return loadgen.RunShards(ctx, lc, m.bootShards(img, lc.Seed), lo, hi)
}

// MergeLoadPartials folds worker partials into the report LoadTest would
// have produced for the same plan; order- and duplicate-insensitive (see
// loadgen.MergePartials).
func MergeLoadPartials(plan LoadPlan, parts []*LoadPartial) (*LoadReport, error) {
	return loadgen.MergePartials(plan, parts)
}

// FuzzPlan resolves cfg exactly as Fuzz would — seed-corpus and label
// defaulting, seed derivation — and returns the normalized engine plan, so
// a coordinator sees the final shard count and the resolved seed corpus it
// must ship to workers.
func (m *Machine) FuzzPlan(img *Image, cfg FuzzConfig) (FuzzPlan, error) {
	fc, _, err := m.fuzzPlan(img, cfg)
	if err != nil {
		return FuzzPlan{}, err
	}
	return fc.Normalize()
}

// FuzzShards runs only shards [lo, hi) of the fuzzing campaign. Shard
// indices keep their global meaning, so victim machines, mutation streams,
// and budget shares are identical to the single-process run's.
func (m *Machine) FuzzShards(ctx context.Context, img *Image, cfg FuzzConfig, lo, hi int) ([]*FuzzPartial, error) {
	fc, boot, err := m.fuzzPlan(img, cfg)
	if err != nil {
		return nil, err
	}
	return fuzz.RunShards(ctx, fc, boot, lo, hi)
}

// MergeFuzzPartials folds worker partials into the report Fuzz would have
// produced for the same plan; order- and duplicate-insensitive (see
// fuzz.MergePartials).
func MergeFuzzPartials(plan FuzzPlan, parts []*FuzzPartial) (*FuzzReport, error) {
	return fuzz.MergePartials(plan, parts)
}
