package pssp_test

import (
	"context"
	"encoding/json"
	"testing"

	"repro/pssp"
)

// These tests pin the fabric's wire contract at the facade: every engine's
// partial aggregate must survive a JSON encode/decode (the coordinator ↔
// worker hop) and merge back — in any order, at any split — into a report
// byte-identical to the single-process run. The splits 1, 4 and 16 mirror
// the engines' own worker-count determinism tests.

// splits partitions [0, n) into k contiguous half-open ranges.
func splits(n, k int) [][2]int {
	var out [][2]int
	size := (n + k - 1) / k
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// roundTrip pushes each partial through the coordinator/worker JSON hop.
func roundTrip[T any](t *testing.T, parts []*T) []*T {
	t.Helper()
	out := make([]*T, len(parts))
	for i, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		fresh := new(T)
		if err := json.Unmarshal(b, fresh); err != nil {
			t.Fatal(err)
		}
		// Reversed collection order: the merge must key on shard indices,
		// not arrival order.
		out[len(parts)-1-i] = fresh
	}
	return out
}

func wantJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCampaignPartialRoundTripMergesByteIdentical(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemeSSP))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pssp.CampaignConfig{
		Strategy:     "byte-by-byte",
		Replications: 16,
		Seed:         2018,
		Attack:       pssp.AttackConfig{MaxTrials: 200},
	}
	ref, err := m.Campaign(ctx, img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := wantJSON(t, ref)
	plan, err := m.CampaignPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		var parts []*pssp.CampaignPartial
		for _, r := range splits(plan.Replications, workers) {
			p, err := m.CampaignShards(ctx, img, cfg, r[0], r[1])
			if err != nil {
				t.Fatalf("workers=%d shards [%d,%d): %v", workers, r[0], r[1], err)
			}
			parts = append(parts, p)
		}
		got := wantJSON(t, pssp.MergeCampaignPartials(plan, roundTrip(t, parts)))
		if got != want {
			t.Errorf("workers=%d: merged campaign aggregate differs:\n got %s\nwant %s", workers, got, want)
		}
	}
}

func TestLoadPartialRoundTripMergesByteIdentical(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemePSSP))
	img, err := m.CompileApp("nginx")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pssp.WorkloadConfig{
		Arrivals:      pssp.ArrivalsOpenPoisson,
		RatePerMcycle: 20,
		Requests:      64,
		Shards:        16,
		Seed:          2018,
	}
	ref, err := m.LoadTest(ctx, img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := wantJSON(t, ref)
	plan, err := m.LoadPlan(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := plan.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		var parts []*pssp.LoadPartial
		for _, r := range splits(norm.Shards, workers) {
			ps, err := m.LoadShards(ctx, img, cfg, r[0], r[1])
			if err != nil {
				t.Fatalf("workers=%d shards [%d,%d): %v", workers, r[0], r[1], err)
			}
			parts = append(parts, ps...)
		}
		merged, err := pssp.MergeLoadPartials(plan, roundTrip(t, parts))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := wantJSON(t, merged); got != want {
			t.Errorf("workers=%d: merged load report differs:\n got %s\nwant %s", workers, got, want)
		}
	}
}

func TestFuzzPartialRoundTripMergesByteIdentical(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemeSSP))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pssp.FuzzConfig{Execs: 256, Shards: 16, Seed: 2018}
	ref, err := m.Fuzz(ctx, img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := wantJSON(t, ref)
	plan, err := m.FuzzPlan(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		var parts []*pssp.FuzzPartial
		for _, r := range splits(plan.Shards, workers) {
			ps, err := m.FuzzShards(ctx, img, cfg, r[0], r[1])
			if err != nil {
				t.Fatalf("workers=%d shards [%d,%d): %v", workers, r[0], r[1], err)
			}
			parts = append(parts, ps...)
		}
		merged, err := pssp.MergeFuzzPartials(plan, roundTrip(t, parts))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := wantJSON(t, merged); got != want {
			t.Errorf("workers=%d: merged fuzz report differs:\n got %s\nwant %s", workers, got, want)
		}
	}
}
