package pssp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fuzz"
	"repro/internal/kernel"
	"repro/internal/rng"
	"repro/internal/vm"
)

// FuzzConfig parameterizes Machine.Fuzz. The zero value fuzzes the image's
// built-in benign request for 4096 mutations over 4 shards.
type FuzzConfig struct {
	// Label names the run in the report (default: the image name).
	Label string
	// Seeds is the initial corpus; empty means the app's built-in request.
	Seeds [][]byte
	// Dict is an optional dictionary of tokens for the mutation engine.
	Dict [][]byte
	// Execs is the total mutation budget, partitioned across shards
	// (default 4096). Seed executions and crash-minimization probes run on
	// top of it.
	Execs int
	// Shards is the number of self-contained fuzzing shards, each booting
	// its own replica victim (default 4). Part of the scenario, like a
	// campaign's replication count.
	Shards int
	// Workers bounds shard concurrency (default GOMAXPROCS). Wall-clock
	// only: for a fixed Seed the report is bit-identical at any count.
	Workers int
	// Seed drives the whole run (victim entropy and mutation streams);
	// 0 means the machine's seed.
	Seed uint64
	// MaxInput caps generated input length in bytes (default 1024).
	MaxInput int
	// Progress, when non-nil, receives a running tally roughly every
	// ProgressEvery executions and at every shard completion, serialized by
	// the engine. Wall-clock observability only — it never affects the
	// deterministic report.
	Progress func(FuzzProgress)
	// ProgressEvery is the number of executions between Progress calls
	// (default 256).
	ProgressEvery int
	// BaseVirgin seeds every shard's coverage frontier with a previous run's
	// merged frontier (FuzzReport.Frontier) — the persistent-corpus resume
	// path: known edges are no longer novel, so the budget chases new
	// coverage. Part of the scenario. Ignored unless it is exactly the VM
	// coverage-map size.
	BaseVirgin []byte
}

// FuzzProgress is a fuzzing run's running tally; see fuzz.Progress.
type FuzzProgress = fuzz.Progress

// FuzzReport is a fuzzing run's deterministic aggregate: execution and crash
// counts, the deduplicated findings, the coverage frontier (edge count +
// hash), and the corpus fingerprint. See fuzz.Report for the field docs.
type FuzzReport = fuzz.Report

// FuzzFinding is one deduplicated crash site with its minimized input; see
// fuzz.Finding. Feed it to FindingAttack to campaign against the discovered
// overflow.
type FuzzFinding = fuzz.Finding

// FindingAttack is the fuzz→attack bridge: it converts a discovered crash
// into the AttackConfig that brute-forces the same overflow. The minimized
// crashing input is one byte longer than what the victim survives, so its
// length minus one is the buffer-start→canary distance an attacker needs
// (AttackConfig.BufLen). Canary-detected findings translate exactly; for a
// raw-crash finding (unprotected victim) the same length still marks the
// first corruptible slot.
func FindingAttack(f FuzzFinding) AttackConfig {
	return AttackConfig{BufLen: f.OverflowLen()}
}

// fuzzVictimStream separates shard victim-machine seeds from campaign
// victims (stream 1) and loadgen shard victims (stream 2).
const fuzzVictimStream = 3

// fuzzExecutor adapts one shard's fork-server into the fuzzing engine's
// executor: reset the shared edge map, serve the input to a fresh worker,
// classify the outcome.
type fuzzExecutor struct {
	srv *kernel.ForkServer
	cov *vm.CovMap
}

// Execute implements fuzz.Executor.
func (e *fuzzExecutor) Execute(ctx context.Context, input []byte) (fuzz.Exec, *vm.CovMap, error) {
	e.cov.Reset()
	out, err := e.srv.HandleContext(ctx, input)
	if err != nil {
		return fuzz.Exec{}, nil, err
	}
	ex := fuzz.Exec{Cycles: out.Cycles, Insts: out.Insts}
	if out.Crashed {
		ex.Crashed = true
		ex.Detected = errors.Is(out.CrashErr, kernel.ErrStackSmash)
		ex.Kind = out.CrashReason
		var ce *vm.CrashError
		if errors.As(out.CrashErr, &ce) {
			ex.CrashPC = ce.RIP
			ex.Kind = ce.Reason
		}
	}
	return ex, e.cov, nil
}

// Fuzz runs a coverage-guided fuzzing campaign against img: cfg.Shards
// self-contained shards, each booting its own replica fork-server victim
// with the VM's edge-coverage map enabled, mutating from its private stream
// of the seed, executed by cfg.Workers goroutines. Crashes are deduplicated
// by (fault PC, fault kind, canary-detected vs raw) and minimized; the
// resulting findings feed Machine.Campaign through FindingAttack.
//
// For a fixed seed the report — corpus hashes, coverage frontier, crash set
// — is bit-identical at any worker count. On cancellation the partial report
// of the work done so far is returned alongside ctx.Err().
func (m *Machine) Fuzz(ctx context.Context, img *Image, cfg FuzzConfig) (*FuzzReport, error) {
	fc, boot, err := m.fuzzPlan(img, cfg)
	if err != nil {
		return nil, err
	}
	return fuzz.Run(ctx, fc, boot)
}

// fuzzPlan resolves cfg into the engine configuration and per-shard boot —
// the shared front half of Fuzz, FuzzShards, and FuzzPlan.
func (m *Machine) fuzzPlan(img *Image, cfg FuzzConfig) (fuzz.Config, fuzz.Boot, error) {
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		app, ok := App(img.Name())
		if !ok || app.Request == nil {
			return fuzz.Config{}, nil, fmt.Errorf("pssp: no built-in request to seed the fuzzer for image %q; set FuzzConfig.Seeds", img.Name())
		}
		seeds = [][]byte{app.Request}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = m.cfg.seed
	}
	label := cfg.Label
	if label == "" {
		label = img.Name()
	}
	boot := func(ctx context.Context, shard int) (fuzz.Executor, error) {
		victim := m.withSeed(rng.Mix(rng.Mix(seed, uint64(shard)), fuzzVictimStream))
		srv, err := victim.Serve(ctx, img)
		if err != nil {
			return nil, err
		}
		return &fuzzExecutor{srv: srv.srv, cov: srv.srv.EnableCoverage()}, nil
	}
	return fuzz.Config{
		Label:         label,
		Seeds:         seeds,
		Dict:          cfg.Dict,
		Execs:         cfg.Execs,
		Shards:        cfg.Shards,
		Workers:       cfg.Workers,
		Seed:          seed,
		MaxInput:      cfg.MaxInput,
		Progress:      cfg.Progress,
		ProgressEvery: cfg.ProgressEvery,
		BaseVirgin:    cfg.BaseVirgin,
	}, boot, nil
}
