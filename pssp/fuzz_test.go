package pssp_test

import (
	"context"
	"reflect"
	"testing"

	"repro/pssp"
)

// fuzzVuln runs a small fixed-seed fuzzing campaign against one of the
// built-in vulnerable servers compiled under scheme.
func fuzzVuln(t *testing.T, app string, scheme pssp.Scheme, workers int) *pssp.FuzzReport {
	t.Helper()
	m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(scheme))
	img, err := m.CompileApp(app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fuzz(context.Background(), img, pssp.FuzzConfig{
		Execs:   384,
		Shards:  4,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFuzzReportDeterministicAcrossWorkerCounts is the end-to-end
// determinism acceptance: a fixed seed yields a byte-identical FuzzReport —
// corpus hashes, coverage frontier, deduplicated crash set — at workers
// 1, 4 and 16 on the real VM fork-server victim.
func TestFuzzReportDeterministicAcrossWorkerCounts(t *testing.T) {
	base := fuzzVuln(t, "nginx-vuln", pssp.SchemeSSP, 1)
	if base.Execs == 0 || base.Edges == 0 || base.CorpusSize == 0 {
		t.Fatalf("degenerate report: %+v", base)
	}
	for _, w := range []int{4, 16} {
		got := fuzzVuln(t, "nginx-vuln", pssp.SchemeSSP, w)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("FuzzReport differs at %d workers:\n1:  %+v\n%d: %+v", w, base, w, got)
		}
	}
}

// TestFuzzDiscoversSeededOverflow is the discovery acceptance: on every
// built-in vulnerable server the fuzzer must find the read(fd, buf,
// attacker_len) overflow within a small exec budget, classify it as
// canary-detected, and minimize it to exactly one byte past the buffer.
func TestFuzzDiscoversSeededOverflow(t *testing.T) {
	for _, app := range []string{"nginx-vuln", "ali-vuln"} {
		t.Run(app, func(t *testing.T) {
			rep := fuzzVuln(t, app, pssp.SchemeSSP, 0)
			if len(rep.Findings) == 0 {
				t.Fatalf("no findings in %d execs", rep.Execs)
			}
			var overflow *pssp.FuzzFinding
			for i := range rep.Findings {
				if rep.Findings[i].Detected {
					overflow = &rep.Findings[i]
					break
				}
			}
			if overflow == nil {
				t.Fatalf("no canary-detected finding among %+v", rep.Findings)
			}
			if got := overflow.OverflowLen(); got != pssp.VulnServerBufSize {
				t.Fatalf("OverflowLen = %d, want %d (minimized %q)",
					got, pssp.VulnServerBufSize, overflow.Minimized)
			}
			if rep.ExecsToFirstCrash == 0 {
				t.Fatal("ExecsToFirstCrash not recorded")
			}
		})
	}
}

// TestFuzzFindingDrivesCampaign is the fuzz→attack handoff acceptance: a
// finding discovered by fuzzing an SSP build seeds a byte-by-byte campaign
// against the unprotected (none) build of the same server, and the attack
// succeeds — the discovered buffer length is the real one.
func TestFuzzFindingDrivesCampaign(t *testing.T) {
	ctx := context.Background()
	rep := fuzzVuln(t, "nginx-vuln", pssp.SchemeSSP, 0)
	var overflow *pssp.FuzzFinding
	for i := range rep.Findings {
		if rep.Findings[i].Detected {
			overflow = &rep.Findings[i]
			break
		}
	}
	if overflow == nil {
		t.Fatal("fuzzing found no overflow to hand off")
	}

	// A worker whose saved RBP is corrupted can wander until the watchdog
	// fires; the kernel-default 4Mi budget keeps those deaths quick without
	// changing any verdict (a benign nginx-vuln request is ~10^3 insts).
	m := pssp.NewMachine(pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemeNone),
		pssp.WithMaxInstructions(4<<20))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Campaign(ctx, img, pssp.CampaignConfig{
		Replications: 2,
		Attack:       pssp.FindingAttack(*overflow),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes != res.Completed || res.Completed == 0 {
		t.Fatalf("bridged campaign against none: %d/%d successes", res.Successes, res.Completed)
	}
}

// TestFuzzSeedsDefaultToBuiltinRequest pins the seed-corpus defaulting and
// the error for images without one.
func TestFuzzSeedsDefaultToBuiltinRequest(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(7))
	img, err := m.CompileApp("401.bzip2") // batch app: no built-in request
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fuzz(ctx, img, pssp.FuzzConfig{Execs: 1}); err == nil {
		t.Fatal("batch app without seeds accepted")
	}
}
