package pssp

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/abi"
	"repro/internal/asm"
	"repro/internal/binfmt"
	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rewrite"
)

// Image is a loadable binary image: the output of Compile and the input of
// Load. Images are immutable once built and safe to share across Machines.
type Image struct {
	bin *binfmt.Binary
}

// Symbol is one entry of an image's symbol table.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
}

// Name returns the program name recorded at compile time.
func (im *Image) Name() string { return im.bin.Meta["name"] }

// Scheme returns the protection scheme the image was compiled with (the
// zero Scheme if the metadata is missing or unknown).
func (im *Image) Scheme() Scheme {
	s, err := ParseScheme(im.bin.Meta[abi.MetaScheme])
	if err != nil {
		return 0
	}
	return s
}

// Linkage returns "static" or "dynamic".
func (im *Image) Linkage() string { return im.bin.Meta[abi.MetaLinkage] }

// CodeSize returns the total executable bytes.
func (im *Image) CodeSize() int { return im.bin.CodeSize() }

// TextSize returns the size of the .text section alone (the rewriter must
// keep it fixed; appended helper sections land elsewhere).
func (im *Image) TextSize() int {
	if t := im.bin.Text(); t != nil {
		return len(t.Data)
	}
	return 0
}

// TotalSize returns the loadable size of all sections.
func (im *Image) TotalSize() int { return im.bin.TotalSize() }

// Symbol looks up a symbol by name.
func (im *Image) Symbol(name string) (Symbol, bool) {
	s, ok := im.bin.Symbol(name)
	if !ok {
		return Symbol{}, false
	}
	return Symbol{Name: s.Name, Addr: s.Addr, Size: s.Size}, true
}

// Marshal encodes the image in the on-disk binary format.
func (im *Image) Marshal() []byte { return binfmt.Marshal(im.bin) }

// WriteFile marshals the image to path.
func (im *Image) WriteFile(path string) error {
	return os.WriteFile(path, im.Marshal(), 0o644)
}

// UnmarshalImage decodes an image previously produced by Marshal.
func UnmarshalImage(raw []byte) (*Image, error) {
	b, err := binfmt.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	return &Image{bin: b}, nil
}

// OpenImage reads and decodes an image file.
func OpenImage(path string) (*Image, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	im, err := UnmarshalImage(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return im, nil
}

// Disassembly renders every executable section of the image.
func (im *Image) Disassembly() string {
	var b strings.Builder
	for _, sec := range im.bin.Sections {
		if sec.Perm&mem.PermExec == 0 || len(sec.Data) == 0 {
			continue
		}
		fmt.Fprintf(&b, "section %s at 0x%x (%d bytes):\n", sec.Name, sec.Addr, len(sec.Data))
		b.WriteString(asm.Disassemble(sec.Data))
	}
	return b.String()
}

// DisassembleFunc disassembles one function; tailBytes > 0 restricts the
// output to roughly the last tailBytes of it (aligned to an instruction
// boundary), which is enough to show an epilogue.
func (im *Image) DisassembleFunc(name string, tailBytes int) (string, error) {
	sym, ok := im.bin.Symbol(name)
	if !ok {
		return "", fmt.Errorf("pssp: image %s has no symbol %q", im.Name(), name)
	}
	sec := im.bin.Text()
	if sec == nil {
		return "", fmt.Errorf("pssp: image %s has no .text section", im.Name())
	}
	start := int(sym.Addr - sec.Addr)
	end := start + int(sym.Size)
	from := start
	if tailBytes > 0 && end-tailBytes > start {
		from = end - tailBytes
	}
	// Align to an instruction boundary by decoding forward from the start.
	off := start
	for off < from {
		_, n, err := isa.Decode(sec.Data, off)
		if err != nil {
			break
		}
		off += n
	}
	return asm.Disassemble(sec.Data[off:end]), nil
}

// Rewrite runs the binary rewriter (paper Section V-C): it upgrades an
// SSP-compiled app image — and, for dynamically linked apps, its libc image —
// to P-SSP in place, preserving code size and stack layout. libc is nil for
// statically linked apps, and the returned libc is non-nil only when one was
// rewritten.
func Rewrite(app, libc *Image) (*Image, *Image, error) {
	var libcBin *binfmt.Binary
	if libc != nil {
		libcBin = libc.bin
	}
	newApp, newLibc, err := rewrite.Rewrite(app.bin, libcBin)
	if err != nil {
		return nil, nil, err
	}
	out := &Image{bin: newApp}
	if newLibc != nil {
		return out, &Image{bin: newLibc}, nil
	}
	return out, nil, nil
}

// compileConfig collects per-call compile options.
type compileConfig struct {
	scheme       Scheme
	linkage      string
	libc         *Image
	libcScheme   Scheme
	checkOnWrite bool
}

// CompileOption adjusts one Compile call away from the machine's defaults.
type CompileOption func(*compileConfig)

// CompileScheme overrides the machine's default protection scheme.
func CompileScheme(s Scheme) CompileOption {
	return func(c *compileConfig) { c.scheme = s }
}

// CompileDynamic links the program dynamically against the given libc image
// (build one with Machine.CompileLibc). The default is static linkage.
func CompileDynamic(libc *Image) CompileOption {
	return func(c *compileConfig) { c.linkage = abi.LinkDynamic; c.libc = libc }
}

// CompileLibcScheme selects the scheme of the embedded libc under static
// linkage; the default is the app's scheme.
func CompileLibcScheme(s Scheme) CompileOption {
	return func(c *compileConfig) { c.libcScheme = s }
}

// CompileCheckOnWrite makes write-checking passes (P-SSP-LV) verify their
// canaries right after each buffer write, in addition to the epilogue — the
// paper's §V-E2 early-detection option.
func CompileCheckOnWrite() CompileOption {
	return func(c *compileConfig) { c.checkOnWrite = true }
}

// Compile lowers a program under the machine's (or the options') protection
// scheme and links it into a loadable image. The default linkage is static.
func (m *Machine) Compile(prog *cc.Program, opts ...CompileOption) (*Image, error) {
	cfg := compileConfig{scheme: m.cfg.scheme, linkage: abi.LinkStatic}
	for _, o := range opts {
		o(&cfg)
	}
	ccOpts := cc.Options{
		Scheme:       cfg.scheme,
		Linkage:      cfg.linkage,
		LibcScheme:   cfg.libcScheme,
		CheckOnWrite: cfg.checkOnWrite,
	}
	if cfg.libc != nil {
		ccOpts.Libc = cfg.libc.bin
	}
	bin, _, err := cc.CachedCompile(prog, ccOpts, m.cfg.store)
	if err != nil {
		return nil, err
	}
	return &Image{bin: bin}, nil
}

// CompileLibc builds a shared C-library image under the given scheme, for
// dynamic linkage (CompileDynamic) and loading (LoadLibc).
func (m *Machine) CompileLibc(s Scheme) (*Image, error) {
	bin, err := cc.BuildLibc(s)
	if err != nil {
		return nil, err
	}
	return &Image{bin: bin}, nil
}
