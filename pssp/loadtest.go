package pssp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/loadgen"
	"repro/internal/rng"
)

// ArrivalKind selects a workload's arrival model; see the Arrivals*
// constants.
type ArrivalKind = loadgen.ArrivalKind

// KneeEfficiency is the achieved/offered fraction below which a LoadSweep
// point counts as past the saturation knee.
const KneeEfficiency = loadgen.KneeEfficiency

// CyclesPerMicrosecond converts victim cycles to microseconds at the 3.5 GHz
// clock of the paper's i7-4770K testbed — the one conversion constant shared
// by the harness tables, CLIs and examples.
const CyclesPerMicrosecond = 3500.0

// Arrival models for WorkloadConfig.Arrivals.
const (
	// ArrivalsOpenPoisson is an open loop with Poisson arrivals at
	// RatePerMcycle: load arrives whether or not the servers keep up — the
	// model that exposes the saturation knee.
	ArrivalsOpenPoisson = loadgen.OpenPoisson
	// ArrivalsOpenUniform is an open loop with fixed inter-arrival spacing.
	ArrivalsOpenUniform = loadgen.OpenUniform
	// ArrivalsClosedLoop is a population of Clients with exponential think
	// times, each waiting for its response before re-issuing.
	ArrivalsClosedLoop = loadgen.ClosedLoop
)

// RequestClass is one class of a workload's traffic mix: either a fixed
// benign payload or a live adversary identified by attack-strategy name.
type RequestClass struct {
	// Name labels the class in the report (defaults to "benign" or the
	// probe strategy name).
	Name string
	// Weight is the class's relative share of the mix (default 1).
	Weight int
	// Payload is the benign request body; nil defaults to the app's
	// built-in request. Leave nil for probe classes.
	Payload []byte
	// Probe selects an adversary by registry name (see AttackStrategies):
	// the class's requests are the strategy's probes, generated live
	// against each shard's server and fed back its crash verdicts, so
	// attack traffic and benign traffic interleave on the same servers.
	Probe string
}

// WorkloadConfig is a load-test scenario for Machine.LoadTest. The zero
// value of Mix targets the image's built-in benign request; Arrivals
// defaults to a 4-client closed loop when neither a rate nor a client count
// is set.
type WorkloadConfig struct {
	// Label names the scenario in the report (default: the image name).
	Label string
	// Mix is the traffic mix. Empty means one benign class carrying the
	// app's built-in request payload.
	Mix []RequestClass
	// Arrivals selects the arrival model.
	Arrivals ArrivalKind
	// RatePerMcycle is the aggregate open-loop offered rate in requests per
	// million victim cycles.
	RatePerMcycle float64
	// Clients is the closed-loop client population (default 4 when the
	// model is closed-loop).
	Clients int
	// ThinkCycles is the closed-loop mean think time in victim cycles.
	ThinkCycles float64
	// Requests bounds the run by total request count (default 256 when
	// DurationCycles is 0 too).
	Requests int
	// DurationCycles bounds the run by virtual-time horizon.
	DurationCycles uint64
	// Shards is the replica-server count the clients are sharded over
	// (default 4). Part of the scenario, like Clients.
	Shards int
	// Workers bounds shard concurrency (default GOMAXPROCS). Wall-clock
	// only: for a fixed Seed the report is bit-identical at any count.
	Workers int
	// Seed drives the whole workload (victim entropy, arrival jitter, mix
	// choices, probe guesses); 0 means the machine's seed.
	Seed uint64
	// Attack describes the victim frame probed by probe classes, as in
	// Server.Attack. Its Strategy field must be empty — per-class Probe
	// names select the adversaries.
	Attack AttackConfig
	// Progress, when non-nil, receives a running tally roughly every
	// ProgressEvery served requests and at every shard completion,
	// serialized by the engine. Wall-clock observability only — it never
	// affects the deterministic report.
	Progress func(LoadProgress)
	// ProgressEvery is the number of served requests between Progress calls
	// (default 64).
	ProgressEvery int
}

// LoadProgress is a workload's running tally; see loadgen.Progress.
type LoadProgress = loadgen.Progress

// LoadReport is a workload's deterministic aggregate: tail-latency
// histograms (p50/p90/p99/p99.9 over log-scaled buckets),
// offered-vs-achieved throughput, per-class request/crash/detection
// breakdowns, and probe-replication counters for attack-under-load
// scenarios. See loadgen.Report for the field docs.
type LoadReport = loadgen.Report

// LoadReportClass is one class's slice of a LoadReport; see
// loadgen.ClassStats.
type LoadReportClass = loadgen.ClassStats

// LoadSweepReport is an offered-load sweep's aggregate; see
// loadgen.SweepReport.
type LoadSweepReport = loadgen.SweepReport

// loadVictimStream separates shard victim-machine seeds from the shard's
// client-side randomness (stream 0 of the same pair) and from campaign
// victims (which derive with stream 1).
const loadVictimStream = 2

// resolveWorkload lowers a WorkloadConfig onto the loadgen engine: mix
// defaulting (the image's built-in request), probe-strategy resolution, and
// arrival-model defaults.
func (m *Machine) resolveWorkload(img *Image, cfg WorkloadConfig) (loadgen.Config, error) {
	if cfg.Attack.Strategy != "" {
		return loadgen.Config{}, errors.New("pssp: WorkloadConfig.Attack.Strategy must be empty; name adversaries per class via RequestClass.Probe")
	}
	// builtinRequest resolves the app's built-in benign payload — the
	// default body of any benign class that doesn't carry its own.
	builtinRequest := func() ([]byte, error) {
		app, ok := App(img.Name())
		if !ok || app.Request == nil {
			return nil, fmt.Errorf("pssp: no built-in benign request for image %q; set the class Payload", img.Name())
		}
		return app.Request, nil
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = []RequestClass{{Name: "benign", Weight: 1}}
	}
	classes := make([]loadgen.Class, len(mix))
	for i, rc := range mix {
		cl := loadgen.Class{Name: rc.Name, Weight: rc.Weight, Payload: rc.Payload}
		if cl.Weight == 0 {
			cl.Weight = 1
		}
		if rc.Probe != "" {
			if rc.Payload != nil {
				return loadgen.Config{}, fmt.Errorf("pssp: class %q sets both Payload and Probe", rc.Name)
			}
			attackCfg := cfg.Attack
			attackCfg.Strategy = rc.Probe
			strat, acfg, err := m.resolveAttack(attackCfg)
			if err != nil {
				return loadgen.Config{}, err
			}
			cl.Probe, cl.ProbeCfg = strat, acfg
			if cl.Name == "" {
				cl.Name = strat.Name()
			}
		} else {
			if cl.Payload == nil {
				p, err := builtinRequest()
				if err != nil {
					return loadgen.Config{}, err
				}
				cl.Payload = p
			}
			if cl.Name == "" {
				cl.Name = "benign"
			}
		}
		classes[i] = cl
	}

	arrivals := loadgen.Arrivals{
		Kind:          cfg.Arrivals,
		RatePerMcycle: cfg.RatePerMcycle,
		Clients:       cfg.Clients,
		ThinkCycles:   cfg.ThinkCycles,
	}
	if arrivals.Kind == ArrivalsClosedLoop && arrivals.Clients == 0 {
		arrivals.Clients = 4
	}
	requests := cfg.Requests
	if requests == 0 && cfg.DurationCycles == 0 {
		requests = 256
	}
	label := cfg.Label
	if label == "" {
		label = img.Name()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = m.cfg.seed
	}
	return loadgen.Config{
		Label:          label,
		Mix:            classes,
		Arrivals:       arrivals,
		Requests:       requests,
		DurationCycles: cfg.DurationCycles,
		Shards:         cfg.Shards,
		Workers:        cfg.Workers,
		Seed:           seed,
		Progress:       cfg.Progress,
		ProgressEvery:  cfg.ProgressEvery,
	}, nil
}

// loadServer adapts a facade Server to the loadgen engine's request sink.
type loadServer struct {
	s *Server
}

// Handle implements loadgen.Server: a worker crash is an outcome (with its
// canary-detection classification), not an error.
func (l loadServer) Handle(ctx context.Context, req []byte) (loadgen.Outcome, error) {
	resp, err := l.s.Handle(ctx, req)
	if err != nil {
		return loadgen.Outcome{}, err
	}
	out := loadgen.Outcome{Cycles: resp.Cycles, Crashed: resp.Crashed()}
	if out.Crashed {
		out.Detected = errors.Is(resp.Err, ErrCanaryDetected)
	}
	return out, nil
}

// bootShards returns the loadgen Boot that serves img on per-shard replica
// machines: shard s's victim always derives from (seed, s), so the fleet is
// independent of scheduling.
func (m *Machine) bootShards(img *Image, seed uint64) loadgen.Boot {
	return func(ctx context.Context, shard int) (loadgen.Server, error) {
		victim := m.withSeed(rng.Mix(rng.Mix(seed, uint64(shard)), loadVictimStream))
		srv, err := victim.Serve(ctx, img)
		if err != nil {
			return nil, err
		}
		return loadServer{s: srv}, nil
	}
}

// LoadTest runs a virtual-time load test: the workload's traffic mix —
// optionally interleaving live attack probes with benign requests — driven
// by its arrival model against cfg.Shards replica fork-servers booted from
// img, executed by cfg.Workers goroutines. Latency is measured in victim
// cycles from (virtual) arrival to completion, so queueing delay behind a
// busy server is included — the component the paper's sequential request
// loops cannot see.
//
// For a fixed seed the report is bit-identical at any worker count. On
// cancellation the partial report of the completed work is returned
// alongside ctx.Err().
func (m *Machine) LoadTest(ctx context.Context, img *Image, cfg WorkloadConfig) (*LoadReport, error) {
	lc, err := m.resolveWorkload(img, cfg)
	if err != nil {
		return nil, err
	}
	return loadgen.Run(ctx, lc, m.bootShards(img, lc.Seed))
}

// LoadSweep steps the workload's offered load through the multipliers
// (open loop: the rate; closed loop: the client population), re-running the
// scenario on fresh replica servers at each point, and reports the
// saturation knee — the largest multiplier whose achieved throughput stayed
// within loadgen.KneeEfficiency of offered.
func (m *Machine) LoadSweep(ctx context.Context, img *Image, cfg WorkloadConfig, multipliers []float64) (*LoadSweepReport, error) {
	lc, err := m.resolveWorkload(img, cfg)
	if err != nil {
		return nil, err
	}
	return loadgen.RunSweep(ctx, lc, multipliers, m.bootShards(img, lc.Seed))
}
