package pssp

import (
	"context"
	"reflect"
	"testing"
)

// loadWorkloads are the acceptance scenarios: an open-loop benign mix and a
// mixed benign+adaptive-probe workload, both small enough for `go test`.
func loadWorkloads() map[string]struct {
	app string
	cfg WorkloadConfig
} {
	return map[string]struct {
		app string
		cfg WorkloadConfig
	}{
		"open-benign": {
			app: "nginx",
			cfg: WorkloadConfig{
				Arrivals:      ArrivalsOpenPoisson,
				RatePerMcycle: 20,
				Requests:      32,
				Shards:        4,
				Seed:          2018,
			},
		},
		"mixed-attack-under-load": {
			app: "nginx-vuln",
			cfg: WorkloadConfig{
				Mix: []RequestClass{
					{Name: "benign", Weight: 3, Payload: []byte("GET /")},
					{Name: "probe", Weight: 1, Probe: "adaptive"},
				},
				Arrivals:    ArrivalsClosedLoop,
				Clients:     4,
				ThinkCycles: 2000,
				Requests:    32,
				Shards:      4,
				Seed:        2018,
				Attack:      AttackConfig{MaxTrials: 16},
			},
		},
	}
}

// TestLoadTestDeterministicAcrossWorkerCounts is the tentpole acceptance
// check: same seed, bit-identical LoadReport (histogram buckets, throughput,
// per-class counters) at worker counts 1, 4 and 16, for both an open-loop
// benign mix and a mixed benign+adaptive scenario on real VM servers.
func TestLoadTestDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	for name, sc := range loadWorkloads() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := NewMachine(WithSeed(2018), WithScheme(SchemePSSP))
			img, err := m.CompileApp(sc.app)
			if err != nil {
				t.Fatal(err)
			}
			var reports []*LoadReport
			for _, workers := range []int{1, 4, 16} {
				cfg := sc.cfg
				cfg.Workers = workers
				rep, err := m.LoadTest(ctx, img, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rep.Requests != cfg.Requests {
					t.Fatalf("workers=%d: served %d, want %d", workers, rep.Requests, cfg.Requests)
				}
				reports = append(reports, rep)
			}
			for i := 1; i < len(reports); i++ {
				if !reflect.DeepEqual(reports[0], reports[i]) {
					t.Errorf("report at workers=%d differs from workers=1:\n%+v\nvs\n%+v",
						[]int{1, 4, 16}[i], reports[i], reports[0])
				}
			}
		})
	}
}

func TestLoadTestDefaultsToAppRequest(t *testing.T) {
	ctx := context.Background()
	m := NewMachine(WithSeed(7))
	img, err := m.CompileApp("nginx")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.LoadTest(ctx, img, WorkloadConfig{
		Arrivals: ArrivalsClosedLoop,
		Requests: 8,
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 1 || rep.Classes[0].Name != "benign" {
		t.Fatalf("default mix classes: %+v", rep.Classes)
	}
	if rep.Crashes != 0 || rep.OK != 8 {
		t.Fatalf("benign load crashed: %+v", rep)
	}
	if rep.Latency.Count != 8 || rep.Latency.P50 == 0 {
		t.Fatalf("latency summary empty: %+v", rep.Latency)
	}
	if rep.GoodputPerMcycle <= 0 || rep.DurationCycles == 0 {
		t.Fatalf("throughput not computed: %+v", rep)
	}
}

func TestLoadTestAttackUnderLoadCounters(t *testing.T) {
	ctx := context.Background()
	m := NewMachine(WithSeed(2018), WithScheme(SchemePSSP))
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.LoadTest(ctx, img, WorkloadConfig{
		Mix: []RequestClass{
			{Name: "benign", Weight: 1, Payload: []byte("GET /")},
			{Weight: 2, Probe: "byte-by-byte"},
		},
		Arrivals:      ArrivalsOpenUniform,
		RatePerMcycle: 50,
		Requests:      36,
		Shards:        3,
		Attack:        AttackConfig{MaxTrials: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	var benign, probe *LoadReportClass
	for i := range rep.Classes {
		switch rep.Classes[i].Name {
		case "benign":
			benign = &rep.Classes[i]
		case "byte-by-byte": // name defaulted from the strategy
			probe = &rep.Classes[i]
		}
	}
	if benign == nil || probe == nil {
		t.Fatalf("class breakdown missing entries: %+v", rep.Classes)
	}
	if benign.Crashes != 0 {
		t.Errorf("benign traffic crashed %d times under P-SSP", benign.Crashes)
	}
	// P-SSP re-randomizes per fork: essentially every probe must crash and
	// be classified as a canary detection.
	if probe.Crashes == 0 {
		t.Error("no probe crashed against the polymorphic canary")
	}
	if probe.Detections == 0 {
		t.Error("probe crashes not classified as canary detections")
	}
	if rep.Crashes != probe.Crashes+benign.Crashes {
		t.Errorf("total crashes %d != class sum %d", rep.Crashes, probe.Crashes+benign.Crashes)
	}
	// 8-trial replications complete constantly; none can recover an 8-byte
	// polymorphic canary.
	if rep.ProbeReplications == 0 {
		t.Error("no probe replication completed")
	}
	if rep.ProbeSuccesses != 0 {
		t.Errorf("%d probe successes against P-SSP within 8 trials", rep.ProbeSuccesses)
	}
}

func TestLoadSweepOnRealServers(t *testing.T) {
	ctx := context.Background()
	m := NewMachine(WithSeed(11), WithScheme(SchemePSSP))
	img, err := m.CompileApp("nginx")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := m.LoadSweep(ctx, img, WorkloadConfig{
		Arrivals:      ArrivalsOpenUniform,
		RatePerMcycle: 0.05, // far under capacity at 1x
		Requests:      12,
		Shards:        2,
	}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("points %d, want 2", len(sw.Points))
	}
	if sw.KneeMultiplier < 1 {
		t.Errorf("knee %g, want >= 1 for an underloaded sweep", sw.KneeMultiplier)
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	ctx := context.Background()
	m := NewMachine()
	img, err := m.CompileApp("nginx-vuln")
	if err != nil {
		t.Fatal(err)
	}
	cases := []WorkloadConfig{
		{Mix: []RequestClass{{Name: "x", Payload: []byte("p"), Probe: "adaptive"}}, Requests: 1}, // both payload and probe
		{Mix: []RequestClass{{Name: "x", Probe: "no-such-strategy"}}, Requests: 1},               // unknown strategy
		{Attack: AttackConfig{Strategy: "adaptive"}, Requests: 1},                                // strategy on the frame config
		{Arrivals: ArrivalsOpenPoisson, Requests: 1},                                             // open loop without rate
	}
	for i, cfg := range cases {
		if _, err := m.LoadTest(ctx, img, cfg); err == nil {
			t.Errorf("case %d: invalid workload accepted", i)
		}
	}
	// Batch apps have no benign request to default to.
	batch, err := m.CompileApp("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadTest(ctx, batch, WorkloadConfig{Requests: 1}); err == nil {
		t.Error("defaulted a mix for a batch app with no request payload")
	}
}
