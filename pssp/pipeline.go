package pssp

import (
	"context"
	"errors"

	"repro/internal/cc"
)

// Pipeline is the fluent face of the compile → load → run/serve flow. Steps
// record the first error and subsequent steps become no-ops, so a chain
// needs exactly one error check at its terminal call:
//
//	res, err := m.Pipeline().CompileApp("403.gcc").Run(ctx)
//	srv, err := m.Pipeline().CompileApp("nginx-vuln").Serve(ctx)
//
// Rewrite slots the paper's binary-instrumentation path between compile and
// load:
//
//	res, err := m.Pipeline().Compile(prog, pssp.CompileScheme(pssp.SchemeSSP)).Rewrite().Run(ctx)
type Pipeline struct {
	m    *Machine
	img  *Image
	proc *Process
	err  error
}

// Pipeline starts an empty pipeline on the machine.
func (m *Machine) Pipeline() *Pipeline { return &Pipeline{m: m} }

// Compile compiles the program into the pipeline's image.
func (pl *Pipeline) Compile(prog *cc.Program, opts ...CompileOption) *Pipeline {
	if pl.err != nil {
		return pl
	}
	pl.img, pl.err = pl.m.Compile(prog, opts...)
	return pl
}

// CompileApp compiles a program from the built-in application suite by name.
func (pl *Pipeline) CompileApp(name string, opts ...CompileOption) *Pipeline {
	if pl.err != nil {
		return pl
	}
	pl.img, pl.err = pl.m.CompileApp(name, opts...)
	return pl
}

// UseImage adopts an already-built image (e.g. one read with OpenImage).
func (pl *Pipeline) UseImage(img *Image) *Pipeline {
	if pl.err != nil {
		return pl
	}
	pl.img = img
	return pl
}

// Rewrite upgrades the pipeline's statically linked image with the binary
// rewriter (SSP → P-SSP in place). For dynamically linked apps use the
// package-level Rewrite, which also rewrites the libc image.
func (pl *Pipeline) Rewrite() *Pipeline {
	if pl.err != nil {
		return pl
	}
	pl.img, _, pl.err = Rewrite(pl.img, nil)
	return pl
}

// Load spawns the pipeline's image as a process.
func (pl *Pipeline) Load(opts ...LoadOption) *Pipeline {
	if pl.err != nil {
		return pl
	}
	pl.proc, pl.err = pl.m.Load(pl.img, opts...)
	return pl
}

// Image returns the pipeline's image and accumulated error.
func (pl *Pipeline) Image() (*Image, error) { return pl.img, pl.err }

// Process returns the loaded process and accumulated error.
func (pl *Pipeline) Process() (*Process, error) { return pl.proc, pl.err }

// Err returns the first error recorded by any step.
func (pl *Pipeline) Err() error { return pl.err }

// Run is the terminal batch step: loads the image if no Load step ran, then
// executes to completion under ctx. Passing LoadOptions after an explicit
// Load step is an error — they would be silently ignored otherwise.
func (pl *Pipeline) Run(ctx context.Context, opts ...LoadOption) (*Result, error) {
	if pl.err == nil && pl.proc != nil && len(opts) > 0 {
		pl.err = errLoadOptsAfterLoad
	}
	if pl.err == nil && pl.proc == nil {
		pl.Load(opts...)
	}
	if pl.err != nil {
		return nil, pl.err
	}
	return pl.proc.Run(ctx)
}

// errLoadOptsAfterLoad guards the Run/Serve terminal steps against load
// options that arrive after the process was already loaded.
var errLoadOptsAfterLoad = errors.New("pssp: pipeline already ran Load; pass LoadOptions to Load, not the terminal step")

// Serve is the terminal server step: boots the pipeline's process (loading
// the image first if no Load step ran) to its accept point and returns the
// parked fork server.
func (pl *Pipeline) Serve(ctx context.Context, opts ...LoadOption) (*Server, error) {
	if pl.err == nil && pl.proc != nil && len(opts) > 0 {
		pl.err = errLoadOptsAfterLoad
	}
	if pl.err == nil && pl.proc == nil {
		pl.Load(opts...)
	}
	if pl.err != nil {
		return nil, pl.err
	}
	return pl.m.serveLoaded(ctx, pl.proc)
}
