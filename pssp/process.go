package pssp

import (
	"context"

	"repro/internal/kernel"
)

// loadConfig collects per-call load options.
type loadConfig struct {
	libc    *Image
	preload Scheme
}

// LoadOption adjusts one Load/Serve call.
type LoadOption func(*loadConfig)

// LoadLibc maps the given libc image into the process — required for
// dynamically linked apps.
func LoadLibc(libc *Image) LoadOption {
	return func(c *loadConfig) { c.libc = libc }
}

// LoadPreload overrides the preloaded scheme hooks (the paper's shared
// library role). By default the scheme is derived from the image metadata;
// overriding it models deploying one scheme's runtime under a binary
// compiled with another — the compatibility experiment.
func LoadPreload(s Scheme) LoadOption {
	return func(c *loadConfig) { c.preload = s }
}

// Process is one loaded simulated process.
type Process struct {
	m        *Machine
	p        *kernel.Process
	finished bool
}

// Result reports a completed run.
type Result struct {
	// ExitCode is the value passed to exit(2).
	ExitCode uint64
	// Cycles and Insts are the process's total execution cost.
	Cycles uint64
	Insts  uint64
	// Output is everything the process wrote to stdout.
	Output []byte
}

// Load spawns the image as a new process: map sections, stack and TLS, run
// the scheme's startup hooks, apply the machine's instrumentation. The
// process is ready to Run.
func (m *Machine) Load(img *Image, opts ...LoadOption) (*Process, error) {
	cfg := loadConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	kOpts := kernel.SpawnOpts{Preload: cfg.preload}
	if cfg.libc != nil {
		kOpts.Libc = cfg.libc.bin
	}
	p, err := m.k.Spawn(img.bin, kOpts)
	if err != nil {
		return nil, err
	}
	m.instrument(p)
	return &Process{m: m, p: p}, nil
}

// Run executes the process until it exits, crashes, or ctx is cancelled.
//
// On orderly exit it returns the Result. A crash returns a *CrashError
// matching ErrCrash (and ErrCanaryDetected / ErrBudgetExhausted where
// applicable). Cancellation returns ctx.Err() with the process left where
// it stopped — a later Run resumes it. A program that blocks in accept(2)
// returns ErrAwaitingRequest: it is a server, drive it with Machine.Serve.
func (pr *Process) Run(ctx context.Context) (*Result, error) {
	if pr.finished {
		return nil, ErrHalted
	}
	st, err := pr.m.k.RunContext(ctx, pr.p)
	if err != nil {
		return nil, err
	}
	switch st {
	case kernel.StateExited:
		pr.finished = true
		return &Result{
			ExitCode: pr.p.ExitCode,
			Cycles:   pr.p.CPU.Cycles,
			Insts:    pr.p.CPU.Insts,
			Output:   pr.p.Stdout,
		}, nil
	case kernel.StateCrashed:
		pr.finished = true
		return nil, newCrashError(pr.p.ID, pr.p.CrashReason, pr.p.CrashErr)
	case kernel.StateWaiting:
		return nil, ErrAwaitingRequest
	default:
		return nil, ErrHalted
	}
}

// PID returns the simulated process id.
func (pr *Process) PID() int { return pr.p.ID }

// Cycles returns the cycles consumed so far.
func (pr *Process) Cycles() uint64 { return pr.p.CPU.Cycles }

// Insts returns the instructions executed so far.
func (pr *Process) Insts() uint64 { return pr.p.CPU.Insts }

// Output returns everything written to stdout so far.
func (pr *Process) Output() []byte { return pr.p.Stdout }

// Canary returns the process's TLS canary C — the secret the paper's
// attacks try to recover (used by experiments to verify recoveries).
func (pr *Process) Canary() (uint64, error) { return pr.p.TLS().Canary() }

// Footprint returns the process's mapped memory in bytes.
func (pr *Process) Footprint() int { return pr.p.Space.Footprint() }

// Run is the one-call batch pipeline: Load the image and run it to
// completion under ctx.
func (m *Machine) Run(ctx context.Context, img *Image, opts ...LoadOption) (*Result, error) {
	p, err := m.Load(img, opts...)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}
