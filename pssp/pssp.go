// Package pssp is the public facade of the P-SSP reproduction: one
// composable surface over the whole simulated stack — compiler, assembler,
// binary format, kernel, VM, binary rewriter, and attack driver.
//
// The unit of work is a Machine: an isolated simulated computer (kernel +
// CPU + entropy source) constructed with functional options. A Machine runs
// the full pipeline
//
//	Compile(source) → Image → Load(Image) → Process → Run / Serve
//
// either step by step or through the fluent Pipeline type:
//
//	m := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(pssp.SchemePSSP))
//	res, err := m.Pipeline().CompileApp("403.gcc").Run(ctx)
//
// Servers follow the paper's fork-per-request model:
//
//	srv, err := m.Pipeline().CompileApp("nginx-vuln").Serve(ctx)
//	resp, err := srv.Handle(ctx, []byte("GET /"))
//
// Every run accepts a context.Context whose cancellation is checked inside
// the VM step loop, so long simulations are abortable mid-instruction-stream.
// Machines are self-contained: any number of them may run concurrently on
// separate goroutines (see Session and RunSessions), which is how the
// evaluation harness parallelizes the paper's tables.
//
// Failures carry a sentinel taxonomy compatible with errors.Is/As: ErrCrash
// for any abnormal termination, ErrCanaryDetected for crashes raised by a
// canary check, ErrBudgetExhausted for watchdog kills. See CrashError for
// the carried detail.
package pssp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/store"
	"repro/internal/vm"
)

// Engine selects the machine's execution engine; see WithEngine.
type Engine = vm.Engine

// Execution engines.
const (
	// EnginePredecoded is the default decode-once engine: each executable
	// segment is predecoded into a code cache that forked workers share
	// read-only, and the step loop dispatches over predecoded instructions.
	EnginePredecoded = vm.EnginePredecoded
	// EngineInterpreter is the legacy fetch–decode–execute interpreter,
	// kept selectable for differential testing: all engines produce
	// bit-identical results, cycle counts, and attack outcomes.
	EngineInterpreter = vm.EngineInterpreter
	// EngineCompiled is the block-lowered tier: predecoded segments are
	// lazily lowered into basic blocks of flat micro-ops with fused
	// canary-sequence superinstructions, cached segment-view memory access,
	// and block-level budget/coverage accounting. Fastest engine; outputs
	// stay bit-identical to the other two (traps, cold offsets and
	// self-modified code fall back to the per-step path).
	EngineCompiled = vm.EngineCompiled
)

// Engines returns every execution engine, slowest first. The order is part
// of the API: differential tests iterate it, and ParseEngine's error text
// enumerates it.
func Engines() []Engine {
	return []Engine{EngineInterpreter, EnginePredecoded, EngineCompiled}
}

// EngineNames returns the parseable names of every engine, in Engines()
// order.
func EngineNames() []string {
	es := Engines()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.String()
	}
	return names
}

// ParseEngine resolves an engine name ("interpreter", "predecoded",
// "compiled") case-insensitively, ignoring surrounding whitespace. Unknown
// names produce an error enumerating every accepted name.
func ParseEngine(name string) (Engine, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, e := range Engines() {
		if e.String() == n {
			return e, nil
		}
	}
	return 0, fmt.Errorf("pssp: unknown engine %q (engines: %s)",
		name, strings.Join(EngineNames(), ", "))
}

// CycleModel selects how the VM accounts cycles per instruction.
type CycleModel uint8

// Cycle models.
const (
	// CyclesCalibrated uses the per-opcode table calibrated against the
	// paper's i7-4770K testbed. The default.
	CyclesCalibrated CycleModel = iota
	// CyclesFlat charges one cycle per instruction — instruction counting,
	// for throughput comparisons independent of the cost model.
	CyclesFlat
)

// Stats accumulates per-opcode execution statistics across every process a
// Machine runs. Install with WithStats, render with Report.
type Stats = vm.OpStats

// NewStats returns an empty statistics collector for WithStats.
func NewStats() *Stats { return &Stats{} }

// config collects Machine options.
type config struct {
	seed         uint64
	scheme       Scheme
	engine       Engine
	maxInsts     uint64
	attackBudget int
	cycleModel   CycleModel
	traceW       io.Writer
	traceLimit   uint64
	stats        *Stats
	store        *store.Store
}

func defaultConfig() config {
	return config{
		seed:         1,
		scheme:       SchemePSSP,
		maxInsts:     256 << 20,
		attackBudget: 4096,
	}
}

// Option configures a Machine.
type Option func(*config)

// WithSeed seeds the machine's entropy source. Two machines with the same
// seed and workload behave identically; the default seed is 1.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithScheme sets the default protection scheme used by Compile when no
// per-call override is given. The default is SchemePSSP.
func WithScheme(s Scheme) Option { return func(c *config) { c.scheme = s } }

// WithEngine selects the execution engine for every process the machine
// runs. The default is EnginePredecoded; EngineCompiled is the fast
// block-lowered tier and EngineInterpreter the legacy reference path — for
// a fixed seed all three engines produce identical outputs,
// instruction/cycle counts, attack outcomes, and fuzz reports.
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithMaxInstructions bounds a single Run/Handle call; a process exceeding
// it is crashed with ErrBudgetExhausted (the watchdog analog). The default
// is 256Mi instructions.
func WithMaxInstructions(n uint64) Option { return func(c *config) { c.maxInsts = n } }

// WithAttackBudget bounds Server.Attack trials when AttackConfig.MaxTrials
// is zero. The default is 4096.
func WithAttackBudget(n int) Option { return func(c *config) { c.attackBudget = n } }

// WithCycleModel selects the VM's cycle accounting.
func WithCycleModel(m CycleModel) Option { return func(c *config) { c.cycleModel = m } }

// WithTrace prints each executed instruction to w, stopping after limit
// instructions per process (0 = unlimited). Ignored when WithStats is set.
func WithTrace(w io.Writer, limit uint64) Option {
	return func(c *config) { c.traceW, c.traceLimit = w, limit }
}

// WithStats installs a shared per-opcode statistics collector on every
// process the machine runs. Takes precedence over WithTrace.
func WithStats(s *Stats) Option { return func(c *config) { c.stats = s } }

// Machine is one isolated simulated computer: a kernel, its CPU(s), and a
// deterministic entropy source. Machines are not safe for concurrent use by
// multiple goroutines, but any number of Machines run concurrently — each
// owns all of its state.
type Machine struct {
	cfg config
	k   *kernel.Kernel
	// servers tracks every parked server booted on this machine so
	// Machine.Close can retire them all (a machine is single-goroutine by
	// design, so no lock guards the list).
	servers []*Server
}

// Close retires every server the machine has booted (see Server.Close),
// returning their parked parents' buffers to the machine's pool. The machine
// itself stays usable — Close is the between-jobs reset a long-lived machine
// needs (the daemon's warm pool closes before re-serving), not a destructor.
func (m *Machine) Close() {
	for _, s := range m.servers {
		s.Close()
	}
	m.servers = nil
}

// NewMachine builds a machine from functional options.
func NewMachine(opts ...Option) *Machine {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	k := kernel.New(cfg.seed)
	k.MaxInsts = cfg.maxInsts
	k.Engine = cfg.engine
	return &Machine{cfg: cfg, k: k}
}

// Engine returns the machine's execution engine.
func (m *Machine) Engine() Engine { return m.cfg.engine }

// Scheme returns the machine's default protection scheme.
func (m *Machine) Scheme() Scheme { return m.cfg.scheme }

// AttackBudget returns the machine's default attack-trial budget.
func (m *Machine) AttackBudget() int { return m.cfg.attackBudget }

// Now returns the machine's global cycle clock.
func (m *Machine) Now() uint64 { return m.k.Now() }

// instrument applies the machine's trace/stats/cycle-model options to a
// freshly spawned process. Fork clones CPU state, so instrumentation set on
// a server parent propagates to every worker.
func (m *Machine) instrument(p *kernel.Process) {
	switch {
	case m.cfg.stats != nil:
		p.CPU.SetTracer(m.cfg.stats)
	case m.cfg.traceW != nil:
		p.CPU.SetTracer(&vm.WriterTracer{W: m.cfg.traceW, Limit: m.cfg.traceLimit})
	}
	if m.cfg.cycleModel == CyclesFlat {
		p.CPU.CostModel = func(isa.Op) uint64 { return 1 }
	}
}
