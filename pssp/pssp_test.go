package pssp_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/pssp"
)

// batchProg is a tiny batch program: one protected function computes and
// writes a byte, then the program exits.
func batchProg() *cc.Program {
	return &cc.Program{
		Name: "roundtrip",
		Funcs: []*cc.Func{
			{Name: "main", Body: []cc.Stmt{cc.Call{Callee: "work"}}},
			{
				Name: "work",
				Locals: []cc.Local{
					{Name: "out", Size: 8, IsBuffer: true},
					{Name: "buf", Size: 16, IsBuffer: true},
				},
				Body: []cc.Stmt{
					cc.Compute{Ops: 8},
					cc.SetConst{Dst: "out", Value: 42},
					cc.WriteOutput{Src: "out", Len: 1},
				},
			},
		},
	}
}

// spinProg loops forever — the cancellation target.
func spinProg() *cc.Program {
	return &cc.Program{
		Name: "spin",
		Funcs: []*cc.Func{
			{
				Name:   "main",
				Locals: []cc.Local{{Name: "n", Size: 8, IsBuffer: true}},
				Body: []cc.Stmt{
					cc.SetConst{Dst: "n", Value: 1},
					cc.While{Var: "n", Body: []cc.Stmt{cc.Compute{Ops: 16}}},
				},
			},
		},
	}
}

// TestRoundTripEveryScheme compiles, loads, and runs the batch program to
// completion under every defined protection scheme.
func TestRoundTripEveryScheme(t *testing.T) {
	for _, s := range pssp.Schemes() {
		t.Run(s.String(), func(t *testing.T) {
			m := pssp.NewMachine(pssp.WithSeed(11), pssp.WithScheme(s))
			res, err := m.Pipeline().Compile(batchProg()).Run(context.Background())
			if err != nil {
				t.Fatalf("pipeline run: %v", err)
			}
			if !bytes.Equal(res.Output, []byte{42}) {
				t.Fatalf("output %v, want [42]", res.Output)
			}
			if res.Cycles == 0 || res.Insts == 0 {
				t.Fatalf("no execution cost recorded: %+v", res)
			}
		})
	}
}

// TestStepwisePipelineMatchesFluent checks Compile/Load/Run composed by
// hand against the fluent Pipeline on identical machines.
func TestStepwisePipelineMatchesFluent(t *testing.T) {
	ctx := context.Background()

	m1 := pssp.NewMachine(pssp.WithSeed(3))
	img, err := m1.Compile(batchProg())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m1.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	m2 := pssp.NewMachine(pssp.WithSeed(3))
	res2, err := m2.Pipeline().Compile(batchProg()).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles != res2.Cycles || res1.Insts != res2.Insts {
		t.Fatalf("stepwise (%d cycles) and fluent (%d cycles) runs diverge", res1.Cycles, res2.Cycles)
	}

	// A finished process cannot be run again.
	if _, err := p.Run(ctx); !errors.Is(err, pssp.ErrHalted) {
		t.Fatalf("re-run of finished process: %v, want ErrHalted", err)
	}
}

// TestRunCancellation verifies ctx cancellation reaches the VM step loop:
// an infinite loop is aborted promptly, both with a pre-cancelled context
// and with one cancelled mid-run.
func TestRunCancellation(t *testing.T) {
	m := pssp.NewMachine(pssp.WithMaxInstructions(1 << 40))
	img, err := m.Compile(spinProg())
	if err != nil {
		t.Fatal(err)
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	proc, err := m.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: %v, want context.Canceled", err)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err = proc.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run: %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — not reaching the step loop", elapsed)
	}
	if proc.Insts() == 0 {
		t.Fatal("process never stepped before cancellation")
	}
}

// TestErrorTaxonomy drives a real overflow and checks the sentinel errors
// work with errors.Is / errors.As.
func TestErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(5), pssp.WithScheme(pssp.SchemeSSP))
	srv, err := m.Pipeline().CompileApp("nginx-vuln").Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}

	benign, err := srv.Handle(ctx, []byte("GET /"))
	if err != nil {
		t.Fatal(err)
	}
	if benign.Crashed() {
		t.Fatalf("benign request crashed: %v", benign.Err)
	}

	// Overflow through the canary: the worker must die by canary check.
	smash, err := srv.Handle(ctx, bytes.Repeat([]byte{0xee}, pssp.VulnServerBufSize+8))
	if err != nil {
		t.Fatal(err)
	}
	if !smash.Crashed() {
		t.Fatal("overflow not detected")
	}
	if !errors.Is(smash.Err, pssp.ErrCrash) {
		t.Errorf("crash does not match ErrCrash: %v", smash.Err)
	}
	if !errors.Is(smash.Err, pssp.ErrCanaryDetected) {
		t.Errorf("canary abort does not match ErrCanaryDetected: %v", smash.Err)
	}
	var ce *pssp.CrashError
	if !errors.As(smash.Err, &ce) || ce.PID == 0 || ce.Reason == "" {
		t.Errorf("errors.As(*CrashError) = %v (err %v)", ce, smash.Err)
	}

	// Budget exhaustion is a distinct sentinel, not a canary detection.
	mb := pssp.NewMachine(pssp.WithMaxInstructions(64))
	_, err = mb.Pipeline().Compile(spinProg()).Run(ctx)
	if !errors.Is(err, pssp.ErrCrash) || !errors.Is(err, pssp.ErrBudgetExhausted) {
		t.Errorf("budget kill = %v, want ErrCrash and ErrBudgetExhausted", err)
	}
	if errors.Is(err, pssp.ErrCanaryDetected) {
		t.Error("budget kill must not match ErrCanaryDetected")
	}
}

// TestServerFlow exercises Serve/Handle/Attack end to end: the attack must
// recover the canary under SSP and stall under P-SSP.
func TestServerFlow(t *testing.T) {
	ctx := context.Background()

	ssp := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(pssp.SchemeSSP), pssp.WithAttackBudget(4096))
	srv, err := ssp.Pipeline().CompileApp("nginx-vuln").Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Attack(ctx, pssp.AttackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("byte-by-byte attack failed on SSP after %d trials", res.Trials)
	}
	real, err := srv.Canary()
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredWord() != real {
		t.Fatalf("recovered %016x, want %016x", res.RecoveredWord(), real)
	}

	poly := pssp.NewMachine(pssp.WithSeed(7), pssp.WithScheme(pssp.SchemePSSP), pssp.WithAttackBudget(2048))
	psrv, err := poly.Pipeline().CompileApp("nginx-vuln").Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := psrv.Attack(ctx, pssp.AttackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Success {
		t.Fatal("byte-by-byte attack succeeded against P-SSP")
	}

	// Attacks are cancellable mid-run too.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := psrv.Attack(cctx, pssp.AttackConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled attack: %v, want context.Canceled", err)
	}
}

// TestRewritePipeline runs the binary-instrumentation path through the
// facade: SSP image, rewritten in place, still detects overflows.
func TestRewritePipeline(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(9), pssp.WithScheme(pssp.SchemeSSP))

	pl := m.Pipeline().CompileApp("nginx-vuln")
	before, err := pl.Image()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := pl.Rewrite().Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	after, err := pl.Image()
	if err != nil {
		t.Fatal(err)
	}
	if after.TextSize() != before.TextSize() {
		t.Fatalf(".text grew: %d -> %d bytes", before.TextSize(), after.TextSize())
	}
	app, _ := pssp.App("nginx-vuln")
	ok, err := srv.Handle(ctx, app.Request)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Crashed() {
		t.Fatalf("benign request on rewritten binary crashed: %v", ok.Err)
	}
	smash, err := srv.Handle(ctx, bytes.Repeat([]byte{0xfe}, pssp.VulnServerBufSize+8))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(smash.Err, pssp.ErrCanaryDetected) {
		t.Fatalf("rewritten binary missed the overflow: %v", smash.Err)
	}
}

// TestImageMarshalRoundTrip checks the on-disk image path the CLIs use.
func TestImageMarshalRoundTrip(t *testing.T) {
	m := pssp.NewMachine()
	img, err := m.CompileApp("403.gcc")
	if err != nil {
		t.Fatal(err)
	}
	back, err := pssp.UnmarshalImage(img.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != img.Name() || back.Scheme() != img.Scheme() || back.CodeSize() != img.CodeSize() {
		t.Fatalf("round trip changed image: %s/%v/%d -> %s/%v/%d",
			img.Name(), img.Scheme(), img.CodeSize(), back.Name(), back.Scheme(), back.CodeSize())
	}
	res, err := pssp.NewMachine().Run(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts == 0 {
		t.Fatal("unmarshalled image did not run")
	}
}

// TestCycleModelFlat checks WithCycleModel: under the flat model cycles
// equal instructions.
func TestCycleModelFlat(t *testing.T) {
	m := pssp.NewMachine(pssp.WithCycleModel(pssp.CyclesFlat))
	res, err := m.Pipeline().Compile(batchProg()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != res.Insts {
		t.Fatalf("flat model: %d cycles != %d insts", res.Cycles, res.Insts)
	}

	cal := pssp.NewMachine()
	cres, err := cal.Pipeline().Compile(batchProg()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cres.Cycles <= cres.Insts {
		t.Fatalf("calibrated model suspiciously flat: %d cycles for %d insts", cres.Cycles, cres.Insts)
	}
}

// TestPipelineLoadThenServe checks that an explicit Load step feeds the
// terminal Serve/Run steps instead of being silently discarded, and that
// late LoadOptions are rejected.
func TestPipelineLoadThenServe(t *testing.T) {
	ctx := context.Background()

	// Load-then-Serve must boot the loaded process: a machine driven that
	// way behaves identically to the direct Serve form on a twin machine.
	a := pssp.NewMachine(pssp.WithSeed(21), pssp.WithScheme(pssp.SchemeSSP))
	srvA, err := a.Pipeline().CompileApp("nginx-vuln").Load().Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b := pssp.NewMachine(pssp.WithSeed(21), pssp.WithScheme(pssp.SchemeSSP))
	srvB, err := b.Pipeline().CompileApp("nginx-vuln").Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := srvA.Canary()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := srvB.Canary()
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("Load().Serve() canary %016x != Serve() canary %016x — Load step not reused", ca, cb)
	}

	// LoadOptions after an explicit Load are an error, not silently dropped.
	c := pssp.NewMachine()
	if _, err := c.Pipeline().Compile(batchProg()).Load().Run(ctx, pssp.LoadPreload(pssp.SchemeSSP)); err == nil {
		t.Fatal("late LoadOption on Run accepted")
	}
	d := pssp.NewMachine(pssp.WithScheme(pssp.SchemeSSP))
	if _, err := d.Pipeline().CompileApp("nginx-vuln").Load().Serve(ctx, pssp.LoadPreload(pssp.SchemeSSP)); err == nil {
		t.Fatal("late LoadOption on Serve accepted")
	}
}

// TestMachineCloseRetiresServers: Machine.Close closes every server the
// machine booted, Handle then fails with ErrServerClosed, and the machine
// itself stays usable — a fresh Serve on it works and reuses the pool.
func TestMachineCloseRetiresServers(t *testing.T) {
	ctx := context.Background()
	m := pssp.NewMachine(pssp.WithSeed(21), pssp.WithScheme(pssp.SchemeSSP))
	img, err := m.Pipeline().CompileApp("nginx-vuln").Image()
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := m.Serve(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := m.Serve(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Handle(ctx, []byte("GET /")); err != nil {
		t.Fatal(err)
	}
	m.Close()
	for i, srv := range []*pssp.Server{srv1, srv2} {
		if !srv.Closed() {
			t.Fatalf("server %d not closed by Machine.Close", i)
		}
		if _, err := srv.Handle(ctx, []byte("GET /")); !errors.Is(err, pssp.ErrServerClosed) {
			t.Fatalf("server %d Handle after Close: %v, want ErrServerClosed", i, err)
		}
	}
	// Counters survive for post-mortem reads.
	if srv1.Requests() != 1 {
		t.Fatalf("srv1 requests = %d after Close, want 1", srv1.Requests())
	}
	// The machine is still serviceable after Close.
	srv3, err := m.Serve(ctx, img)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv3.Handle(ctx, []byte("GET /"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Crashed() {
		t.Fatalf("benign request crashed on post-Close server: %v", resp.Err)
	}
}
