package pssp

import "repro/internal/core"

// Scheme identifies a stack-protection scheme; it aliases the core type so
// facade users and internal packages interoperate without conversion.
type Scheme = core.Scheme

// The full scheme set: the paper's contribution (PSSP and its extensions),
// the Table I baselines, the unprotected baseline, and the Figure 6
// global-buffer variant.
const (
	SchemeNone      = core.SchemeNone
	SchemeSSP       = core.SchemeSSP
	SchemeRAFSSP    = core.SchemeRAFSSP
	SchemeDynaGuard = core.SchemeDynaGuard
	SchemeDCR       = core.SchemeDCR
	SchemePSSP      = core.SchemePSSP
	SchemePSSPNT    = core.SchemePSSPNT
	SchemePSSPLV    = core.SchemePSSPLV
	SchemePSSPOWF   = core.SchemePSSPOWF
	SchemePSSPGB    = core.SchemePSSPGB
)

// ParseScheme resolves a scheme name case-insensitively, accepting the
// paper's undashed aliases ("pssp" for "p-ssp").
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// Schemes returns all defined schemes in declaration order.
func Schemes() []Scheme { return core.Schemes() }
