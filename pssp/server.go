package pssp

import (
	"context"

	"repro/internal/apps"
	"repro/internal/attack"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/rng"
)

// Server is a fork-per-request server: a parent process parked in accept(2)
// from which every request forks a fresh worker — the paper's threat-model
// server and the attacker's crash oracle.
type Server struct {
	m   *Machine
	srv *kernel.ForkServer
}

// Response reports one served request.
type Response struct {
	// Body is everything the worker wrote before finishing — including
	// output emitted before a crash, since on a real socket those bytes
	// have already left the process.
	Body []byte
	// Cycles and Insts are the worker's execution cost.
	Cycles uint64
	Insts  uint64
	// Err is nil when the worker exited cleanly; otherwise a *CrashError
	// matching ErrCrash (and ErrCanaryDetected for canary aborts).
	Err error
}

// Crashed reports whether the worker died.
func (r *Response) Crashed() bool { return r.Err != nil }

// Serve loads the image and boots it to its accept point, returning the
// parked server. Cancellation during boot returns ctx.Err().
func (m *Machine) Serve(ctx context.Context, img *Image, opts ...LoadOption) (*Server, error) {
	p, err := m.Load(img, opts...)
	if err != nil {
		return nil, err
	}
	return m.serveLoaded(ctx, p)
}

// serveLoaded boots an already-loaded process to its accept point.
func (m *Machine) serveLoaded(ctx context.Context, p *Process) (*Server, error) {
	srv, err := kernel.ServeProcess(ctx, m.k, p.p)
	if err != nil {
		return nil, err
	}
	s := &Server{m: m, srv: srv}
	m.servers = append(m.servers, s)
	return s, nil
}

// Close retires the server: the parked parent's buffers — including ones
// still marked copy-on-write, whose only peers are the server's dead
// single-shot workers — return to the machine's pool so the next boot on
// this machine forks from recycled memory. Subsequent Handle calls fail
// with a transport-level error wrapping kernel.ErrServerClosed; the
// counters (Requests, Crashes, totals) stay readable. Idempotent.
func (s *Server) Close() { s.srv.Close() }

// Closed reports whether Close has retired the server.
func (s *Server) Closed() bool { return s.srv.Closed() }

// Parked reports whether the server is serviceable: not closed, parent
// alive and blocked in accept — the warm-pool health check.
func (s *Server) Parked() bool { return s.srv.Parked() }

// Handle serves one request with a freshly forked worker. The returned
// error covers transport-level failures only (fork failure, cancellation);
// a worker crash is reported in Response.Err so callers can distinguish
// "the request was served and the worker died" from "the request never ran".
func (s *Server) Handle(ctx context.Context, req []byte) (*Response, error) {
	out, err := s.srv.HandleContext(ctx, req)
	if err != nil {
		return nil, err
	}
	resp := &Response{Body: out.Response, Cycles: out.Cycles, Insts: out.Insts}
	if out.Crashed {
		resp.Err = newCrashError(out.PID, out.CrashReason, out.CrashErr)
	}
	return resp, nil
}

// Canary returns the parent's TLS canary C (for verifying attack results).
func (s *Server) Canary() (uint64, error) { return s.srv.Parent().TLS().Canary() }

// Footprint returns the parked parent's mapped memory in bytes — the
// worker memory baseline of the paper's Table IV.
func (s *Server) Footprint() int { return s.srv.Parent().Space.Footprint() }

// Requests returns the number of requests handled so far.
func (s *Server) Requests() int { return s.srv.Requests }

// Crashes returns the number of workers that died.
func (s *Server) Crashes() int { return s.srv.Crashes }

// TotalCycles returns the accumulated worker execution cost.
func (s *Server) TotalCycles() uint64 { return s.srv.TotalCycles }

// TotalInsts returns the accumulated worker instruction count.
func (s *Server) TotalInsts() uint64 { return s.srv.TotalInsts }

// AvgCycles returns the mean worker cycles per request (0 before the first
// request).
func (s *Server) AvgCycles() float64 {
	if s.srv.Requests == 0 {
		return 0
	}
	return float64(s.srv.TotalCycles) / float64(s.srv.Requests)
}

// VulnServerBufSize is the stack-buffer size of the built-in vulnerable
// servers; their canary sits this many bytes past the buffer start.
const VulnServerBufSize = apps.VulnServerBufSize

// BackdoorMarker is the byte the vulnerable servers' never-called backdoor
// function emits when a control-flow hijack reaches it.
const BackdoorMarker byte = apps.BackdoorMarker

// ScratchAddr is a writable data address safe to plant as a forged
// saved-RBP in hijack payloads.
const ScratchAddr uint64 = mem.DataBase + 0x2000

// AttackConfig parameterizes Server.Attack. The zero value runs the
// byte-by-byte attack against the built-in vulnerable servers under the
// machine's attack budget.
type AttackConfig struct {
	// Strategy selects the adversary model by registry name (see
	// AttackStrategies); empty means byte-by-byte.
	Strategy string
	// BufLen is the distance in bytes from the buffer start to the canary
	// (default VulnServerBufSize).
	BufLen int
	// CanaryLen is the canary size in bytes (default 8).
	CanaryLen int
	// MaxTrials bounds the attack (default: the machine's WithAttackBudget).
	MaxTrials int
}

// AttackResult reports an attack run; see the fields on attack.Result.
type AttackResult = attack.Result

// ctxOracle adapts the server into an attack oracle with cancellation
// checked on every trial.
type ctxOracle struct {
	ctx context.Context
	s   *Server
}

// Try implements attack.Oracle. Transport failures are classified per
// attack.WrapOracleErr so attack and campaign layers can tell
// infrastructure errors from trial outcomes; cancellation passes through.
func (o *ctxOracle) Try(payload []byte) (bool, error) {
	out, err := o.s.srv.HandleContext(o.ctx, payload)
	if err != nil {
		return false, attack.WrapOracleErr(err)
	}
	return !out.Crashed, nil
}

// Attack runs one adversary replication against this server, using worker
// survival as the oracle. The default strategy is the paper's byte-by-byte
// canary brute-force (§II-B): on a static canary the attacker's knowledge
// accumulates (~1024 expected trials); against polymorphic canaries every
// fork refreshes the secret and the attack stalls. cfg.Strategy selects any
// other registered adversary; randomized strategies draw their guesses
// deterministically from the machine's seed. For replicated, parallel
// attacks see Machine.Campaign.
func (s *Server) Attack(ctx context.Context, cfg AttackConfig) (AttackResult, error) {
	strat, acfg, err := s.m.resolveAttack(cfg)
	if err != nil {
		return AttackResult{}, err
	}
	return strat.Attack(ctx, &ctxOracle{ctx: ctx, s: s}, acfg,
		rng.NewStream(s.m.cfg.seed, attackStream))
}

// resolveAttack resolves an AttackConfig against the machine's defaults —
// the single defaulting point shared by Server.Attack and Machine.Campaign
// so the two paths cannot drift: strategy by registry name (empty =
// byte-by-byte), BufLen defaulting to VulnServerBufSize, MaxTrials to the
// machine's attack budget.
func (m *Machine) resolveAttack(cfg AttackConfig) (attack.Strategy, attack.Config, error) {
	strat, err := attack.StrategyByName(cfg.Strategy)
	if err != nil {
		return nil, attack.Config{}, err
	}
	acfg := attack.Config{
		BufLen:    cfg.BufLen,
		CanaryLen: cfg.CanaryLen,
		MaxTrials: cfg.MaxTrials,
	}
	if acfg.BufLen == 0 {
		acfg.BufLen = VulnServerBufSize
	}
	if acfg.MaxTrials == 0 {
		acfg.MaxTrials = m.cfg.attackBudget
	}
	return strat, acfg, nil
}

// attackStream is the reserved entropy stream index for Server.Attack's
// guess randomness, separated from process seeds so randomized strategies
// never share a splitmix state with the victim.
const attackStream = 0xa77ac4

// HijackPayload builds the post-recovery exploitation payload: fill the
// buffer, restore the recovered canary, plant a benign saved-RBP (use
// ScratchAddr), overwrite the return address with target, and leave a
// continuation address for target to return into.
func HijackPayload(bufLen int, filler byte, canary []byte, savedRBP, target, continuation uint64) []byte {
	return attack.HijackPayload(bufLen, filler, canary, savedRBP, target, continuation)
}
