package pssp

import (
	"context"
	"sync"
)

// Session is one independently running Machine with a stable identity
// inside a concurrent batch. Machines are fully self-contained (kernel,
// CPU, entropy source), so any number of Sessions run in parallel without
// shared state; the harness uses this to execute the paper's table drivers
// and multi-process workloads concurrently.
type Session struct {
	id int
	m  *Machine
}

// ID returns the session's index within its batch, 0-based.
func (s *Session) ID() int { return s.id }

// Machine returns the session's private machine.
func (s *Session) Machine() *Machine { return s.m }

// RunSessions runs fn on n concurrent Sessions, each owning a freshly built
// Machine, and waits for all of them. optsFor supplies each session's
// machine options by id; when nil, session i gets WithSeed(i+1) so the
// sessions draw from distinct deterministic entropy streams.
//
// The first non-nil error cancels the context passed to every other
// session's fn and is returned after all goroutines finish. Cancellation of
// the parent ctx propagates the same way.
func RunSessions(ctx context.Context, n int, optsFor func(id int) []Option, fn func(ctx context.Context, s *Session) error) error {
	if optsFor == nil {
		optsFor = func(id int) []Option {
			return []Option{WithSeed(uint64(id) + 1)}
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		s := &Session{id: i, m: NewMachine(optsFor(i)...)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(ctx, s); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}
