package pssp_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/pssp"
)

// TestConcurrentSessions runs 8+ independent Machines on goroutines — each
// compiling, serving, attacking, and running batch work — and checks every
// session's results. `go test -race` makes this the facade's isolation
// proof: no state is shared between sessions.
func TestConcurrentSessions(t *testing.T) {
	const n = 12
	type outcome struct {
		canary    uint64
		attackWon bool
		batchOut  []byte
	}
	results := make([]outcome, n)

	err := pssp.RunSessions(context.Background(), n, nil, func(ctx context.Context, s *pssp.Session) error {
		m := s.Machine()
		// Odd sessions run the polymorphic scheme, even ones classic SSP,
		// so concurrent sessions exercise different pass pipelines.
		scheme := pssp.SchemeSSP
		if s.ID()%2 == 1 {
			scheme = pssp.SchemePSSP
		}
		srv, err := m.Pipeline().CompileApp("nginx-vuln", pssp.CompileScheme(scheme)).Serve(ctx)
		if err != nil {
			return fmt.Errorf("session %d: serve: %w", s.ID(), err)
		}
		for i := 0; i < 3; i++ {
			resp, err := srv.Handle(ctx, []byte("GET /"))
			if err != nil {
				return fmt.Errorf("session %d: handle: %w", s.ID(), err)
			}
			if resp.Crashed() {
				return fmt.Errorf("session %d: benign request crashed: %w", s.ID(), resp.Err)
			}
		}
		res, err := srv.Attack(ctx, pssp.AttackConfig{MaxTrials: 512})
		if err != nil {
			return fmt.Errorf("session %d: attack: %w", s.ID(), err)
		}
		canary, err := srv.Canary()
		if err != nil {
			return err
		}

		batch, err := m.Pipeline().Compile(batchProg(), pssp.CompileScheme(scheme)).Run(ctx)
		if err != nil {
			return fmt.Errorf("session %d: batch: %w", s.ID(), err)
		}
		results[s.ID()] = outcome{canary: canary, attackWon: res.Success, batchOut: batch.Output}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	seen := make(map[uint64]int)
	for id, r := range results {
		if !bytes.Equal(r.batchOut, []byte{42}) {
			t.Errorf("session %d: batch output %v", id, r.batchOut)
		}
		if r.attackWon && id%2 == 1 {
			t.Errorf("session %d: attack succeeded against P-SSP", id)
		}
		if prev, dup := seen[r.canary]; dup {
			t.Errorf("sessions %d and %d share a canary %016x — machines not independent", prev, id, r.canary)
		}
		seen[r.canary] = id
	}
}

// TestSessionsDeterministicSeeds checks the default seeding: the same batch
// run twice produces identical per-session canaries.
func TestSessionsDeterministicSeeds(t *testing.T) {
	run := func() ([]uint64, error) {
		out := make([]uint64, 8)
		err := pssp.RunSessions(context.Background(), 8, nil, func(ctx context.Context, s *pssp.Session) error {
			srv, err := s.Machine().Pipeline().CompileApp("nginx-vuln").Serve(ctx)
			if err != nil {
				return err
			}
			c, err := srv.Canary()
			out[s.ID()] = c
			return err
		})
		return out, err
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d: canary %016x vs %016x across identical batches", i, a[i], b[i])
		}
	}
}

// TestSessionsErrorCancelsPeers verifies the first failure cancels the
// other sessions' contexts and surfaces as the batch error.
func TestSessionsErrorCancelsPeers(t *testing.T) {
	boom := errors.New("boom")
	err := pssp.RunSessions(context.Background(), 8, nil, func(ctx context.Context, s *pssp.Session) error {
		if s.ID() == 3 {
			return boom
		}
		m := s.Machine()
		img, err := m.Compile(spinProg())
		if err != nil {
			return err
		}
		// Everyone else spins until the failing session cancels them.
		_, err = m.Run(ctx, img)
		if errors.Is(err, context.Canceled) {
			return nil
		}
		return fmt.Errorf("session %d survived peer failure: %v", s.ID(), err)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("batch error %v, want boom", err)
	}
}
