package pssp

import "repro/internal/store"

// Store is a content-addressed artifact store (see internal/store): compiled
// images keyed by a derivation hash over (source bytes, scheme, compiler
// pass config, toolchain version), cached in-process behind an LRU and on
// disk as mmap-shared blobs. Attach one to a Machine with WithStore and
// every Compile — and everything built on it: Pipeline.CompileApp, campaign
// replications, fuzz shard boots, daemon pool fills — consults the store
// before invoking the compiler.
//
// A Store may be shared by any number of Machines and goroutines, and the
// same directory may be shared by separate processes. Close it only after
// every Machine booted from it is done: store-hit images alias the store's
// mappings.
type Store = store.Store

// StoreStats is a snapshot of store traffic; see Store.Stats.
type StoreStats = store.Stats

// OpenStore opens (creating if needed) the artifact store rooted at dir.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// WithStore routes the machine's compilations through st: Compile serves
// byte-identical images from the store on hit and populates it on miss. A
// nil st is allowed and means no caching.
func WithStore(st *Store) Option { return func(c *config) { c.store = st } }

// Store returns the machine's artifact store, nil when none is attached.
func (m *Machine) Store() *Store { return m.cfg.store }
