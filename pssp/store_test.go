package pssp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/pssp"
)

// TestStoreHitBitIdentity is the store's core contract: a store-hit boot is
// byte-for-byte the same machine as a cold compile, under every execution
// engine and through every serving tier — cold populate, in-process memory
// hit, and (via a fresh handle on the same directory) the mmap'd disk path.
// Image bytes, run results, and output must all be identical.
func TestStoreHitBitIdentity(t *testing.T) {
	ctx := context.Background()
	for _, e := range engines {
		t.Run(e.String(), func(t *testing.T) {
			dir := t.TempDir()

			type outcome struct {
				img           []byte
				exit          uint64
				cycles, insts uint64
				out           string
			}
			boot := func(st *pssp.Store) outcome {
				t.Helper()
				opts := []pssp.Option{pssp.WithSeed(7), pssp.WithEngine(e), pssp.WithScheme(pssp.SchemePSSP)}
				if st != nil {
					opts = append(opts, pssp.WithStore(st))
				}
				m := pssp.NewMachine(opts...)
				img, err := m.Pipeline().CompileApp("401.bzip2").Image()
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run(ctx, img)
				if err != nil {
					t.Fatal(err)
				}
				return outcome{img.Marshal(), res.ExitCode, res.Cycles, res.Insts, string(res.Output)}
			}

			cold := boot(nil)

			st, err := pssp.OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			populate := boot(st) // miss: compiles and writes the blob
			memHit := boot(st)   // in-process tier
			if s := st.Stats(); s.Misses == 0 || s.MemHits == 0 {
				t.Fatalf("stats %+v: want at least one miss and one memory hit", s)
			}
			st.Close()

			// Fresh handle, same directory: the image now comes off the
			// mmap'd blob, zero-copy.
			st2, err := pssp.OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			mmapHit := boot(st2)
			if s := st2.Stats(); s.DiskHits == 0 || s.Misses != 0 {
				t.Fatalf("stats %+v: want a pure disk hit", s)
			}

			for name, got := range map[string]outcome{"populate": populate, "memhit": memHit, "mmaphit": mmapHit} {
				if !bytes.Equal(got.img, cold.img) {
					t.Errorf("%s image differs from cold compile (%d vs %d bytes)", name, len(got.img), len(cold.img))
				}
				if got.exit != cold.exit || got.cycles != cold.cycles ||
					got.insts != cold.insts || got.out != cold.out {
					t.Errorf("%s run diverged: %+v, want %+v", name, got, cold)
				}
			}
			st2.Close()
		})
	}
}

// TestStoreHitReportIdentity asserts the -json report shapes downstream of a
// boot — the fuzz report and the attack campaign result — are byte-identical
// between cold-compile and store-hit boots, including a store handle reopened
// onto existing blobs (the cross-process resume path).
func TestStoreHitReportIdentity(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	run := func(st *pssp.Store) (fuzzJSON, attackJSON []byte) {
		t.Helper()
		opts := []pssp.Option{pssp.WithSeed(2018), pssp.WithScheme(pssp.SchemeSSP), pssp.WithAttackBudget(3000)}
		if st != nil {
			opts = append(opts, pssp.WithStore(st))
		}
		m := pssp.NewMachine(opts...)
		img, err := m.Pipeline().CompileApp("nginx-vuln").Image()
		if err != nil {
			t.Fatal(err)
		}
		frep, err := m.Fuzz(ctx, img, pssp.FuzzConfig{Execs: 256, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		fj, err := json.Marshal(frep)
		if err != nil {
			t.Fatal(err)
		}
		ares, err := m.Campaign(ctx, img, pssp.CampaignConfig{Replications: 2})
		if err != nil {
			t.Fatal(err)
		}
		aj, err := json.Marshal(ares)
		if err != nil {
			t.Fatal(err)
		}
		return fj, aj
	}

	coldFuzz, coldAttack := run(nil)

	st, err := pssp.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	popFuzz, popAttack := run(st)
	st.Close()

	st2, err := pssp.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hitFuzz, hitAttack := run(st2)
	if s := st2.Stats(); s.DiskHits == 0 {
		t.Fatalf("stats %+v: reopened store never hit disk", s)
	}

	for name, pair := range map[string][2][]byte{
		"populate fuzz":  {popFuzz, coldFuzz},
		"populate att":   {popAttack, coldAttack},
		"store-hit fuzz": {hitFuzz, coldFuzz},
		"store-hit att":  {hitAttack, coldAttack},
	} {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Errorf("%s report is not byte-identical to the cold run:\n%s\nvs\n%s", name, pair[0], pair[1])
		}
	}
}

// TestStoreSharedAcrossMachines attaches one store to many machines and
// compiles the same app from each: one build, the rest hits, all images
// byte-identical.
func TestStoreSharedAcrossMachines(t *testing.T) {
	st, err := pssp.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var want []byte
	for i := 0; i < 4; i++ {
		m := pssp.NewMachine(pssp.WithScheme(pssp.SchemePSSP), pssp.WithStore(st))
		img, err := m.Pipeline().CompileApp("nginx-vuln").Image()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = img.Marshal()
			continue
		}
		if !bytes.Equal(img.Marshal(), want) {
			t.Fatalf("machine %d compiled a different image", i)
		}
	}
	s := st.Stats()
	if s.Hits == 0 {
		t.Fatalf("stats %+v: shared store never hit", s)
	}
}
