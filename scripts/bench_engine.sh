#!/usr/bin/env sh
# Regenerates BENCH_engine.json: runs the execution-engine micro-benchmarks
# (fork clone, step loop, fork-server request, campaign, loadgen, fuzzer,
# daemon job-dispatch throughput and artifact-store image acquisition) with
# -benchmem and appends a labelled run to the document,
# preserving earlier PRs' entries so the perf trajectory stays visible in
# one file.
#
#   scripts/bench_engine.sh [label]
#
# BENCHTIME overrides the fixed iteration count (default 400x).
set -e
cd "$(dirname "$0")/.."
if [ "$#" -ge 1 ] && [ -z "$1" ]; then
	echo "bench_engine.sh: empty label argument (omit it for \"current\", or pass a real label)" >&2
	exit 2
fi
label="${1:-current}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' \
	-bench 'BenchmarkForkClone|BenchmarkStepLoop|BenchmarkForkServerRequest|BenchmarkCampaign|BenchmarkLoadgen|BenchmarkFuzz|BenchmarkDaemonRequest|BenchmarkStoreBoot|BenchmarkFabricCampaign|BenchmarkObs' \
	-benchmem -benchtime "${BENCHTIME:-400x}" . | tee /dev/stderr |
	go run ./scripts/benchjson -label "$label" -in BENCH_engine.json >"$tmp"
mv "$tmp" BENCH_engine.json
