#!/usr/bin/env sh
# Regenerates BENCH_engine.json: runs the execution-engine micro-benchmarks
# (fork clone, step loop, fork-server request, campaign throughput) with
# -benchmem and appends a labelled run to the document, preserving earlier
# PRs' entries so the perf trajectory stays visible in one file.
#
#   scripts/bench_engine.sh [label]
#
# BENCHTIME overrides the fixed iteration count (default 400x).
set -e
cd "$(dirname "$0")/.."
label="${1:-current}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' \
	-bench 'BenchmarkForkClone|BenchmarkStepLoop|BenchmarkForkServerRequest|BenchmarkCampaign' \
	-benchmem -benchtime "${BENCHTIME:-400x}" . | tee /dev/stderr |
	go run ./scripts/benchjson -label "$label" -in BENCH_engine.json >"$tmp"
mv "$tmp" BENCH_engine.json
