// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the BENCH_engine.json record tracked across PRs.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | go run ./scripts/benchjson -label pr2 -in BENCH_engine.json
//
// The output document holds one entry per labelled run, newest last, so the
// file accumulates the perf trajectory; re-using a label replaces that run.
// With -in pointing at an existing document its runs are carried over.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark's measurements.
type Bench struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Run is one labelled benchmarking run.
type Run struct {
	Label      string           `json:"label"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// Doc is the whole BENCH_engine.json document.
type Doc struct {
	Comment string `json:"comment"`
	Runs    []Run  `json:"runs"`
}

func main() {
	label := flag.String("label", "current", "label for this run")
	in := flag.String("in", "", "existing BENCH_engine.json to carry runs over from")
	flag.Parse()

	doc := Doc{Comment: "engine micro-benchmarks (scripts/bench_engine.sh); one entry per PR, newest last"}
	if *in != "" {
		if raw, err := os.ReadFile(*in); err == nil {
			if err := json.Unmarshal(raw, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v (starting fresh)\n", *in, err)
			}
		}
	}

	run := Run{Label: *label, Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		run.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(run.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Replace a same-labelled run, else append.
	replaced := false
	for i := range doc.Runs {
		if doc.Runs[i].Label == *label {
			doc.Runs[i] = run
			replaced = true
		}
	}
	if !replaced {
		doc.Runs = append(doc.Runs, run)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
